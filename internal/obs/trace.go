package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// TraceStage names one point in an event's life across the stack.
type TraceStage uint8

const (
	// StageEnqueue: the event was admitted to the session mailbox.
	StageEnqueue TraceStage = iota
	// StageApply: the writer applied it through the backend.
	StageApply
	// StageViewPublish: a read view reflecting it was published.
	StageViewPublish
	// StageFsync: the WAL prefix containing it was fsynced.
	StageFsync
	// StageShip: a replication batch containing it was sent.
	StageShip
	// StageFollowerAck: a follower acknowledged (applied + fsynced)
	// through it. Recorded twice per event with tracing on: once on the
	// follower when the ack is earned, once on the primary when the ack
	// is received — the member field tells them apart.
	StageFollowerAck
	// StageFollowerWALAppend: a follower appended the shipped record to
	// its own WAL.
	StageFollowerWALAppend
	// StageFollowerApply: a follower applied the shipped record through
	// its warm backend.
	StageFollowerApply
	// StageFollowerFsync: a follower fsynced the WAL prefix containing
	// it (the durability its ack promises).
	StageFollowerFsync
	// StageWatchDelivery: a Watch subscriber received the delta for it.
	StageWatchDelivery
)

var stageNames = [...]string{
	"enqueue", "apply", "view-publish", "fsync", "ship", "follower-ack",
	"follower-wal-append", "follower-apply", "follower-fsync", "watch-delivery",
}

func (s TraceStage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// ParseStage maps a stage name back to its TraceStage (the inverse of
// String, for trace-JSON consumers).
func ParseStage(name string) (TraceStage, bool) {
	for i, n := range stageNames {
		if n == name {
			return TraceStage(i), true
		}
	}
	return 0, false
}

// traceEntry is one recorded stage: fixed-size, so the ring never
// allocates after construction.
type traceEntry struct {
	seq   int64
	stage TraceStage
	at    int64 // unix nanoseconds
}

// Tracer is one session's event-stage ring buffer. Record is cheap
// (a mutex'd struct store, no allocation) and keeps only the newest
// RingSize entries; the ring is a flight recorder, not a log. A nil
// Tracer is a no-op.
type Tracer struct {
	mu     sync.Mutex
	member string // identity stamped into every emitted entry ("" omits it)
	ring   []traceEntry
	next   int
	full   bool
}

// DefaultTraceRing is the per-session ring capacity a TraceHub uses
// when none is given.
const DefaultTraceRing = 256

// NewTracer builds a tracer with the given ring capacity (<= 0 means
// DefaultTraceRing).
func NewTracer(ring int) *Tracer {
	return newMemberTracer(ring, "")
}

func newMemberTracer(ring int, member string) *Tracer {
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	return &Tracer{ring: make([]traceEntry, ring), member: member}
}

// Record notes that seq reached stage now.
func (t *Tracer) Record(seq int64, stage TraceStage) {
	if t == nil {
		return
	}
	t.RecordAt(seq, stage, time.Now().UnixNano())
}

// RecordAt notes that seq reached stage at atUnixNs — for stages whose
// true time is carried from elsewhere (the enqueue timestamp rides the
// mailbox request and is recorded only once the applied seq is known).
// Same zero-allocation contract as Record.
func (t *Tracer) RecordAt(seq int64, stage TraceStage, atUnixNs int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = traceEntry{seq: seq, stage: stage, at: atUnixNs}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// snapshot copies the live ring, oldest entry first.
func (t *Tracer) snapshot() (entries []traceEntry, member string) {
	if t == nil {
		return nil, ""
	}
	t.mu.Lock()
	if t.full {
		entries = append(entries, t.ring[t.next:]...)
		entries = append(entries, t.ring[:t.next]...)
	} else {
		entries = append(entries, t.ring[:t.next]...)
	}
	member = t.member
	t.mu.Unlock()
	return entries, member
}

// Entries returns the ring's retained entries with seq >= since, oldest
// first, as the public TraceEntry shape the merge layer consumes.
func (t *Tracer) Entries(since int64) []TraceEntry {
	raw, member := t.snapshot()
	out := make([]TraceEntry, 0, len(raw))
	for _, e := range raw {
		if e.seq < since {
			continue
		}
		out = append(out, TraceEntry{Seq: e.seq, Member: member, Stage: e.stage.String(), At: e.at})
	}
	return out
}

// WriteJSON dumps the ring, oldest entry first, as a JSON array of
// {"seq":N,"member":"a","stage":"apply","at_unix_ns":T} objects (the
// member field is omitted when no identity was configured).
func (t *Tracer) WriteJSON(w io.Writer) error {
	return t.WriteJSONSince(w, minSeq)
}

// minSeq admits every entry (seq is int64 and may legitimately be 0).
const minSeq = -1 << 63

// WriteJSONSince is WriteJSON restricted to entries with seq >= since —
// the ?since_seq= filter of the debug endpoint.
func (t *Tracer) WriteJSONSince(w io.Writer, since int64) error {
	entries, member := t.snapshot()
	// strconv.AppendQuote emits Go-style \x escapes for invalid UTF-8,
	// which is not legal JSON — quote the member through encoding/json
	// (once per dump; this is the cold read path, not the record path).
	var memberJSON []byte
	if member != "" {
		memberJSON, _ = json.Marshal(member)
	}
	b := []byte{'['}
	first := true
	for _, e := range entries {
		if e.seq < since {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, `{"seq":`...)
		b = strconv.AppendInt(b, e.seq, 10)
		if memberJSON != nil {
			b = append(b, `,"member":`...)
			b = append(b, memberJSON...)
		}
		b = append(b, `,"stage":"`...)
		b = append(b, e.stage.String()...)
		b = append(b, `","at_unix_ns":`...)
		b = strconv.AppendInt(b, e.at, 10)
		b = append(b, '}')
	}
	b = append(b, ']', '\n')
	_, err := w.Write(b)
	return err
}

// TraceHub hands out per-session tracers and owns the process's
// slow-event ring. A nil hub hands out nil tracers, which is how
// tracing compiles out when not enabled.
type TraceHub struct {
	mu      sync.Mutex
	ring    int
	member  string
	tracers map[string]*Tracer
	slow    *SlowRing
}

// NewTraceHub builds a hub whose tracers hold ring entries each (<= 0
// means DefaultTraceRing).
func NewTraceHub(ring int) *TraceHub {
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	return &TraceHub{
		ring:    ring,
		tracers: make(map[string]*Tracer),
		slow:    NewSlowRing(DefaultSlowRing, DefaultSlowThreshold),
	}
}

// SetMember stamps a member identity into every entry this hub's
// tracers emit — what lets the fleet collector tell the primary's and a
// follower's records of the same (seq, stage) apart. Call it at node
// setup; tracers already handed out are updated too. Nil-safe.
func (h *TraceHub) SetMember(member string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.member = member
	for _, t := range h.tracers {
		t.mu.Lock()
		t.member = member
		t.mu.Unlock()
	}
	h.mu.Unlock()
}

// Tracer returns the session's tracer, creating it on first use.
// Returns nil on a nil hub.
func (h *TraceHub) Tracer(session string) *Tracer {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.tracers[session]
	if t == nil {
		t = newMemberTracer(h.ring, h.member)
		h.tracers[session] = t
	}
	return t
}

// Peek returns the session's tracer WITHOUT creating one — the
// collector's in-process scrape must not materialize rings for sessions
// this member does not host. Returns nil for unknown sessions or a nil
// hub (and a nil *Tracer is safe everywhere).
func (h *TraceHub) Peek(session string) *Tracer {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tracers[session]
}

// NoteSlow feeds the hub's slow-event ring: an event that took durNs
// beyond the ring's threshold is retained as (session, seq) for the
// slowest-events surfaces. Zero-allocation; nil-safe.
func (h *TraceHub) NoteSlow(session string, seq, durNs int64) {
	if h == nil {
		return
	}
	h.slow.Note(session, seq, durNs)
}

// Slow returns the hub's slow-event ring (nil on a nil hub).
func (h *TraceHub) Slow() *SlowRing {
	if h == nil {
		return nil
	}
	return h.slow
}

// Evict drops a closed session's tracer so the hub does not grow one
// ring per session ever hosted. The next Tracer(session) call starts a
// fresh ring; holders of the old tracer keep a detached (harmless)
// one. Nil-safe.
func (h *TraceHub) Evict(session string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	delete(h.tracers, session)
	h.mu.Unlock()
}

// Handler serves GET /debug/trace/{session}?since_seq=N: the session's
// ring as JSON, optionally restricted to entries with seq >= since_seq.
// Unknown sessions (or a nil hub) answer an empty array — the trace is
// a debug surface, absence is not an error.
func (h *TraceHub) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		session := req.URL.Path[len(prefix):]
		since := int64(minSeq)
		if v := req.URL.Query().Get("since_seq"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "since_seq must be an integer", http.StatusBadRequest)
				return
			}
			since = n
		}
		t := h.Peek(session)
		w.Header().Set("Content-Type", "application/json")
		t.WriteJSONSince(w, since)
	})
}
