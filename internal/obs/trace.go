package obs

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// TraceStage names one point in an event's life across the stack.
type TraceStage uint8

const (
	// StageEnqueue: the event was admitted to the session mailbox.
	StageEnqueue TraceStage = iota
	// StageApply: the writer applied it through the backend.
	StageApply
	// StageViewPublish: a read view reflecting it was published.
	StageViewPublish
	// StageFsync: the WAL prefix containing it was fsynced.
	StageFsync
	// StageShip: a replication batch containing it was sent.
	StageShip
	// StageFollowerAck: a follower acknowledged (applied + fsynced)
	// through it.
	StageFollowerAck
)

var stageNames = [...]string{"enqueue", "apply", "view-publish", "fsync", "ship", "follower-ack"}

func (s TraceStage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// traceEntry is one recorded stage: fixed-size, so the ring never
// allocates after construction.
type traceEntry struct {
	seq   int64
	stage TraceStage
	at    int64 // unix nanoseconds
}

// Tracer is one session's event-stage ring buffer. Record is cheap
// (a mutex'd struct store, no allocation) and keeps only the newest
// RingSize entries; the ring is a flight recorder, not a log. A nil
// Tracer is a no-op.
type Tracer struct {
	mu   sync.Mutex
	ring []traceEntry
	next int
	full bool
}

// DefaultTraceRing is the per-session ring capacity a TraceHub uses
// when none is given.
const DefaultTraceRing = 256

// NewTracer builds a tracer with the given ring capacity (<= 0 means
// DefaultTraceRing).
func NewTracer(ring int) *Tracer {
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	return &Tracer{ring: make([]traceEntry, ring)}
}

// Record notes that seq reached stage now.
func (t *Tracer) Record(seq int64, stage TraceStage) {
	if t == nil {
		return
	}
	at := time.Now().UnixNano()
	t.mu.Lock()
	t.ring[t.next] = traceEntry{seq: seq, stage: stage, at: at}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// WriteJSON dumps the ring, oldest entry first, as a JSON array of
// {"seq":N,"stage":"apply","at_unix_ns":T} objects.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var entries []traceEntry
	if t != nil {
		t.mu.Lock()
		if t.full {
			entries = append(entries, t.ring[t.next:]...)
			entries = append(entries, t.ring[:t.next]...)
		} else {
			entries = append(entries, t.ring[:t.next]...)
		}
		t.mu.Unlock()
	}
	b := []byte{'['}
	for i, e := range entries {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"seq":`...)
		b = strconv.AppendInt(b, e.seq, 10)
		b = append(b, `,"stage":"`...)
		b = append(b, e.stage.String()...)
		b = append(b, `","at_unix_ns":`...)
		b = strconv.AppendInt(b, e.at, 10)
		b = append(b, '}')
	}
	b = append(b, ']', '\n')
	_, err := w.Write(b)
	return err
}

// TraceHub hands out per-session tracers. A nil hub hands out nil
// tracers, which is how tracing compiles out when not enabled.
type TraceHub struct {
	mu      sync.Mutex
	ring    int
	tracers map[string]*Tracer
}

// NewTraceHub builds a hub whose tracers hold ring entries each (<= 0
// means DefaultTraceRing).
func NewTraceHub(ring int) *TraceHub {
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	return &TraceHub{ring: ring, tracers: make(map[string]*Tracer)}
}

// Tracer returns the session's tracer, creating it on first use.
// Returns nil on a nil hub.
func (h *TraceHub) Tracer(session string) *Tracer {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.tracers[session]
	if t == nil {
		t = NewTracer(h.ring)
		h.tracers[session] = t
	}
	return t
}

// Evict drops a closed session's tracer so the hub does not grow one
// ring per session ever hosted. The next Tracer(session) call starts a
// fresh ring; holders of the old tracer keep a detached (harmless)
// one. Nil-safe.
func (h *TraceHub) Evict(session string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	delete(h.tracers, session)
	h.mu.Unlock()
}

// Handler serves GET /debug/trace/{session}: the session's ring as
// JSON. Unknown sessions (or a nil hub) answer an empty array — the
// trace is a debug surface, absence is not an error.
func (h *TraceHub) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		session := req.URL.Path[len(prefix):]
		var t *Tracer
		if h != nil {
			h.mu.Lock()
			t = h.tracers[session]
			h.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		t.WriteJSON(w)
	})
}
