package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family's metadata as announced by the
// exposition's `# HELP` / `# TYPE` comment lines. Type is one of
// "counter", "gauge", "histogram", or "untyped".
type Family struct {
	Help string
	Type string
}

// Scrape is a parsed Prometheus text exposition — what a load
// generator gets back from GET /metrics (or Registry.Render) and folds
// into its report. Families carries the HELP/TYPE metadata keyed by
// family name; histogram `_bucket`/`_sum`/`_count` samples belong to
// the family named by their base.
type Scrape struct {
	Samples  []Sample
	Families map[string]Family
}

// ParseScrape parses the text exposition format the Registry renders.
// `# HELP` and `# TYPE` comments populate Families; other comments are
// skipped and optional trailing timestamps ignored.
func ParseScrape(text string) (*Scrape, error) {
	s := &Scrape{Families: map[string]Family{}}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			s.parseComment(line)
			continue
		}
		smp, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: scrape line %d: %w", ln+1, err)
		}
		s.Samples = append(s.Samples, smp)
	}
	return s, nil
}

// parseComment folds a `# HELP name text` or `# TYPE name type` line
// into Families. Malformed comments are ignored — comments are
// advisory in the exposition format.
func (s *Scrape) parseComment(line string) {
	rest, ok := cutDirective(line, "HELP")
	if ok {
		name, help, _ := cutSpace(rest)
		if name == "" {
			return
		}
		f := s.Families[name]
		f.Help = unescapeHelp(help)
		s.Families[name] = f
		return
	}
	rest, ok = cutDirective(line, "TYPE")
	if ok {
		name, typ, _ := cutSpace(rest)
		if name == "" {
			return
		}
		f := s.Families[name]
		f.Type = strings.TrimSpace(typ)
		s.Families[name] = f
	}
}

// cutDirective strips `# <kw> ` from a comment line.
func cutDirective(line, kw string) (string, bool) {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " \t")
	if !strings.HasPrefix(rest, kw) {
		return "", false
	}
	rest = rest[len(kw):]
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return strings.TrimLeft(rest, " \t"), true
}

// cutSpace splits at the first space or tab.
func cutSpace(s string) (string, string, bool) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", false
	}
	return s[:i], strings.TrimLeft(s[i:], " \t"), true
}

// unescapeHelp reverses HELP-text escaping (`\\` and `\n`).
func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
		} else {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func parseSampleLine(line string) (Sample, error) {
	smp := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return smp, fmt.Errorf("no value in %q", line)
	}
	if i == 0 {
		return smp, fmt.Errorf("missing metric name in %q", line)
	}
	smp.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return smp, err
		}
		smp.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return smp, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return smp, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	smp.Value = v
	return smp, nil
}

// parseLabels reads a `{k="v",...}` block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block in %q", s)
		}
		key := strings.TrimRight(s[i:i+eq], " \t")
		i += eq + 1
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					// Unknown escape: keep the backslash so an
					// unrecognized sequence survives a round trip
					// verbatim instead of silently dropping a byte.
					val.WriteByte('\\')
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		labels[key] = val.String()
	}
}

// matches reports whether the sample carries every given label pair
// (the sample may carry more, e.g. le).
func (s Sample) matches(name string, labels map[string]string) bool {
	if s.Name != name {
		return false
	}
	for k, v := range labels {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the first sample matching name and the given label
// subset.
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	for _, smp := range s.Samples {
		if smp.matches(name, labels) {
			return smp.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample matching name and the given label subset.
func (s *Scrape) Sum(name string, labels map[string]string) float64 {
	total := 0.0
	for _, smp := range s.Samples {
		if smp.matches(name, labels) {
			total += smp.Value
		}
	}
	return total
}

// Quantile estimates the q-quantile of histogram name (its _bucket
// samples matching the given label subset), interpolating within the
// containing bucket exactly as Histogram.Quantile does. Series that
// share a bucket bound are merged by summing their cumulative counts,
// so a loose label subset aggregates across children (e.g. one apply
// latency over every session). The second result is false when the
// histogram is absent or empty.
func (s *Scrape) Quantile(name string, labels map[string]string, q float64) (float64, bool) {
	type bk struct {
		le  float64
		cum float64
	}
	merged := map[float64]float64{}
	for _, smp := range s.Samples {
		if !smp.matches(name+"_bucket", labels) {
			continue
		}
		leStr, ok := smp.Labels["le"]
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			if leStr == "+Inf" {
				le = inf()
			} else {
				continue
			}
		}
		merged[le] += smp.Value
	}
	if len(merged) == 0 {
		return 0, false
	}
	bks := make([]bk, 0, len(merged))
	for le, cum := range merged {
		bks = append(bks, bk{le: le, cum: cum})
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
	total := bks[len(bks)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	prevCum, prevLe := 0.0, 0.0
	for i, b := range bks {
		if b.cum >= rank && b.cum > prevCum {
			if isInf(b.le) {
				if i > 0 {
					return bks[i-1].le, true
				}
				return 0, true
			}
			frac := (rank - prevCum) / (b.cum - prevCum)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return prevLe + (b.le-prevLe)*frac, true
		}
		prevCum, prevLe = b.cum, b.le
	}
	last := bks[len(bks)-1].le
	if isInf(last) && len(bks) > 1 {
		last = bks[len(bks)-2].le
	}
	return last, true
}

func inf() float64         { return math.Inf(1) }
func isInf(v float64) bool { return math.IsInf(v, 1) }
