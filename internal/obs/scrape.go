package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed Prometheus text exposition — what a load
// generator gets back from GET /metrics (or Registry.Render) and folds
// into its report.
type Scrape struct {
	Samples []Sample
}

// ParseScrape parses the text exposition format the Registry renders
// (comment lines skipped, optional trailing timestamps ignored).
func ParseScrape(text string) (*Scrape, error) {
	s := &Scrape{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		smp, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: scrape line %d: %w", ln+1, err)
		}
		s.Samples = append(s.Samples, smp)
	}
	return s, nil
}

func parseSampleLine(line string) (Sample, error) {
	smp := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return smp, fmt.Errorf("no value in %q", line)
	}
	smp.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return smp, err
		}
		smp.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return smp, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return smp, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	smp.Value = v
	return smp, nil
}

// parseLabels reads a `{k="v",...}` block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block in %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		labels[key] = val.String()
	}
}

// matches reports whether the sample carries every given label pair
// (the sample may carry more, e.g. le).
func (s Sample) matches(name string, labels map[string]string) bool {
	if s.Name != name {
		return false
	}
	for k, v := range labels {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the first sample matching name and the given label
// subset.
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	for _, smp := range s.Samples {
		if smp.matches(name, labels) {
			return smp.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample matching name and the given label subset.
func (s *Scrape) Sum(name string, labels map[string]string) float64 {
	total := 0.0
	for _, smp := range s.Samples {
		if smp.matches(name, labels) {
			total += smp.Value
		}
	}
	return total
}

// Quantile estimates the q-quantile of histogram name (its _bucket
// samples matching the given label subset), interpolating within the
// containing bucket exactly as Histogram.Quantile does. Series that
// share a bucket bound are merged by summing their cumulative counts,
// so a loose label subset aggregates across children (e.g. one apply
// latency over every session). The second result is false when the
// histogram is absent or empty.
func (s *Scrape) Quantile(name string, labels map[string]string, q float64) (float64, bool) {
	type bk struct {
		le  float64
		cum float64
	}
	merged := map[float64]float64{}
	for _, smp := range s.Samples {
		if !smp.matches(name+"_bucket", labels) {
			continue
		}
		leStr, ok := smp.Labels["le"]
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			if leStr == "+Inf" {
				le = inf()
			} else {
				continue
			}
		}
		merged[le] += smp.Value
	}
	if len(merged) == 0 {
		return 0, false
	}
	bks := make([]bk, 0, len(merged))
	for le, cum := range merged {
		bks = append(bks, bk{le: le, cum: cum})
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
	total := bks[len(bks)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	prevCum, prevLe := 0.0, 0.0
	for i, b := range bks {
		if b.cum >= rank && b.cum > prevCum {
			if isInf(b.le) {
				if i > 0 {
					return bks[i-1].le, true
				}
				return 0, true
			}
			frac := (rank - prevCum) / (b.cum - prevCum)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return prevLe + (b.le-prevLe)*frac, true
		}
		prevCum, prevLe = b.cum, b.le
	}
	last := bks[len(bks)-1].le
	if isInf(last) && len(bks) > 1 {
		last = bks[len(bks)-2].le
	}
	return last, true
}

func inf() float64         { return math.Inf(1) }
func isInf(v float64) bool { return math.IsInf(v, 1) }
