package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilReceivers: the whole surface must be safe (and a no-op) with
// nothing attached — that is the compile-out contract.
func TestNilReceivers(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has state")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry handed out a metric")
	}
	if r.Render() != "" {
		t.Fatal("nil registry rendered output")
	}
	var tr *Tracer
	tr.Record(1, StageApply)
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("nil tracer dumped %q", sb.String())
	}
	var hub *TraceHub
	if hub.Tracer("s") != nil {
		t.Fatal("nil hub handed out a tracer")
	}
	var l *Logger
	l.Error("nothing", "k", "v")
	var hl *Health
	hl.Set(true, "")
	if ok, _ := hl.Ready(); ok {
		t.Fatal("nil health reports ready")
	}
}

// TestConcurrentExactTotals hammers a counter, gauge, and histogram
// from N writers while a scraper renders continuously, then checks the
// totals are exact — run under -race this is the data-race proof for
// the lock-free update paths.
func TestConcurrentExactTotals(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops", "w", "all")
	h := reg.Histogram("test_lat_seconds", "lat", []float64{0.001, 0.01, 0.1}, "w", "all")
	g := reg.Gauge("test_depth", "depth")

	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	var scr sync.WaitGroup
	scr.Add(1)
	go func() {
		defer scr.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Render()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000.0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scr.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Fatalf("gauge = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	var bucketSum int64
	for i := range h.buckets {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != writers*perWriter {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, writers*perWriter)
	}
	wantSum := 0.0
	for i := 0; i < perWriter; i++ {
		wantSum += float64(i%100) / 1000.0
	}
	wantSum *= writers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestPrometheusGolden pins the exact exposition output for a small
// fixed registry: sorted families, sorted children, cumulative buckets,
// +Inf, _sum, _count.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve_events_applied_total", "events applied", "session", "a").Add(7)
	reg.Counter("serve_events_applied_total", "events applied", "session", "b").Add(3)
	reg.Gauge("cluster_members_alive", "live members").Set(3)
	h := reg.Histogram("serve_apply_seconds", "apply latency", []float64{0.001, 0.01}, "session", "a")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	want := strings.Join([]string{
		`# HELP cluster_members_alive live members`,
		`# TYPE cluster_members_alive gauge`,
		`cluster_members_alive 3`,
		`# HELP serve_apply_seconds apply latency`,
		`# TYPE serve_apply_seconds histogram`,
		`serve_apply_seconds_bucket{session="a",le="0.001"} 2`,
		`serve_apply_seconds_bucket{session="a",le="0.01"} 3`,
		`serve_apply_seconds_bucket{session="a",le="+Inf"} 4`,
		`serve_apply_seconds_sum{session="a"} 5.006`,
		`serve_apply_seconds_count{session="a"} 4`,
		`# HELP serve_events_applied_total events applied`,
		`# TYPE serve_events_applied_total counter`,
		`serve_events_applied_total{session="a"} 7`,
		`serve_events_applied_total{session="b"} 3`,
	}, "\n") + "\n"
	if got := reg.Render(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryReuse: same (name, labels) returns the same metric, so a
// recovered session keeps its cumulative series.
func TestRegistryReuse(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", "session", "s")
	a.Add(4)
	b := reg.Counter("x_total", "x", "session", "s")
	if a != b {
		t.Fatal("re-registration returned a different metric")
	}
	if b.Value() != 4 {
		t.Fatal("re-registration lost the count")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", q)
	}
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100) // overflow bucket reports the last finite bound
	if q := h2.Quantile(0.99); q != 2 {
		t.Fatalf("overflow p99 = %v, want 2", q)
	}
	var empty Histogram
	if q := (&empty).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
}

func TestScrapeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a", "session", "x", "follower", "n2").Add(11)
	reg.Gauge("b_depth", "b").Set(-3)
	h := reg.Histogram("c_seconds", "c", []float64{0.5, 1}, "session", "x")
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(0.75)
	h.Observe(3)

	sc, err := ParseScrape(reg.Render())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("a_total", map[string]string{"session": "x", "follower": "n2"}); !ok || v != 11 {
		t.Fatalf("a_total = %v,%v", v, ok)
	}
	if v, ok := sc.Value("b_depth", nil); !ok || v != -3 {
		t.Fatalf("b_depth = %v,%v", v, ok)
	}
	if v, ok := sc.Value("a_total", map[string]string{"session": "nope"}); ok {
		t.Fatalf("matched absent labels: %v", v)
	}
	if v := sc.Sum("a_total", map[string]string{"session": "x"}); v != 11 {
		t.Fatalf("sum = %v", v)
	}
	q, ok := sc.Quantile("c_seconds", map[string]string{"session": "x"}, 0.5)
	if !ok || q <= 0 || q > 1 {
		t.Fatalf("scraped p50 = %v,%v", q, ok)
	}
	// Scraped quantile must agree with the in-process estimate.
	if direct := h.Quantile(0.5); math.Abs(q-direct) > 1e-9 {
		t.Fatalf("scraped p50 %v != direct %v", q, direct)
	}
	if _, ok := sc.Quantile("missing_seconds", nil, 0.5); ok {
		t.Fatal("quantile on a missing histogram succeeded")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 6; i++ {
		tr.Record(int64(i), StageApply)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Ring of 4: seqs 3..6 survive, oldest first.
	for _, want := range []string{`"seq":3`, `"seq":4`, `"seq":5`, `"seq":6`} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %s: %s", want, out)
		}
	}
	if strings.Contains(out, `"seq":2`) {
		t.Fatalf("dump kept an evicted entry: %s", out)
	}
	if strings.Index(out, `"seq":3`) > strings.Index(out, `"seq":6`) {
		t.Fatalf("dump not oldest-first: %s", out)
	}
	if !strings.Contains(out, `"stage":"apply"`) {
		t.Fatalf("dump missing stage name: %s", out)
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelWarn)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Debug("hidden")
	l.Info("hidden too")
	l.Error("ship failed", "component", "cluster", "session", "alpha", "err", "boom: connection refused")
	got := sb.String()
	want := `ts=2026-08-08T12:00:00.000Z level=error msg="ship failed" component=cluster session=alpha err="boom: connection refused"` + "\n"
	if got != want {
		t.Fatalf("log line:\n got %q\nwant %q", got, want)
	}
	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Fatalf("ParseLevel(WARN) = %v, %v", lv, err)
	}
}

// TestMetricUpdateZeroAlloc is the package-local alloc gate: the update
// paths the serve/cluster hot paths call must allocate nothing.
func TestMetricUpdateZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("z_total", "z")
	g := reg.Gauge("z_depth", "z")
	h := reg.Histogram("z_seconds", "z", nil)
	tr := NewTracer(64)
	if n := testing.AllocsPerRun(500, func() {
		c.Inc()
		g.Set(7)
		h.Observe(0.001)
		tr.Record(1, StageApply)
	}); n != 0 {
		t.Fatalf("metric updates allocated %v per op, want 0", n)
	}
	var nc *Counter
	var nh *Histogram
	var ntr *Tracer
	if n := testing.AllocsPerRun(500, func() {
		nc.Inc()
		nh.Observe(0.001)
		ntr.Record(1, StageApply)
	}); n != 0 {
		t.Fatalf("nil no-op updates allocated %v per op, want 0", n)
	}
}
