package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// mkEntries is shorthand for hand-built ring contents.
func mkEntries(member string, es ...TraceEntry) []TraceEntry {
	for i := range es {
		es[i].Member = member
	}
	return es
}

// TestMergeTracesEndToEnd: a primary's and a follower's rings merge
// into one per-seq waterfall with aligned timestamps, spans in time
// order, per-stage percentiles, and both members reported.
func TestMergeTracesEndToEnd(t *testing.T) {
	primary := MemberTrace{Member: "a", Entries: mkEntries("a",
		TraceEntry{Seq: 1, Stage: "enqueue", At: 100},
		TraceEntry{Seq: 1, Stage: "apply", At: 200},
		TraceEntry{Seq: 1, Stage: "ship", At: 300},
		TraceEntry{Seq: 1, Stage: "follower-ack", At: 900},
	)}
	// The follower's clock runs 50ns ahead (OffsetNs 50): raw stamps
	// 450/500/550 align to 400/450/500, inside the [300, 900] window.
	follower := MemberTrace{Member: "b", OffsetNs: 50, Entries: mkEntries("b",
		TraceEntry{Seq: 1, Stage: "follower-wal-append", At: 450},
		TraceEntry{Seq: 1, Stage: "follower-fsync", At: 500},
		TraceEntry{Seq: 1, Stage: "follower-ack", At: 550},
	)}
	m := MergeTraces("s", []MemberTrace{primary, follower})
	if len(m.Events) != 1 || m.Events[0].Seq != 1 {
		t.Fatalf("merged events: %+v", m.Events)
	}
	ev := m.Events[0]
	if len(ev.Spans) != 7 {
		t.Fatalf("want 7 spans, got %d: %+v", len(ev.Spans), ev.Spans)
	}
	// Aligned and sorted: the follower's spans land between ship and the
	// primary's ack receipt.
	var order []string
	prevAt := int64(-1)
	for _, sp := range ev.Spans {
		order = append(order, sp.Member+":"+sp.Stage)
		if sp.At < prevAt {
			t.Fatalf("spans out of time order: %+v", ev.Spans)
		}
		if sp.DurNs < 0 {
			t.Fatalf("negative duration rendered: %+v", sp)
		}
		prevAt = sp.At
	}
	want := "a:enqueue a:apply a:ship b:follower-wal-append b:follower-fsync b:follower-ack a:follower-ack"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("span order\n got %s\nwant %s", got, want)
	}
	if ev.TotalNs != 800 {
		t.Fatalf("total %d, want 800", ev.TotalNs)
	}
	if m.SkewClamped != 0 {
		t.Fatalf("clean merge counted %d clamps", m.SkewClamped)
	}
	if len(m.Members) != 2 || m.Members[0].Member != "a" || m.Members[1].OffsetNs != 50 {
		t.Fatalf("members: %+v", m.Members)
	}
	if len(m.Stages) == 0 || m.Stages[0].Stage != "enqueue" {
		t.Fatalf("stages not rank-ordered: %+v", m.Stages)
	}
}

// TestMergeTracesSkewClamp: follower spans whose aligned timestamps
// fall outside the [ship, ack-receipt] causality window are pinned to
// the violated bound, flagged, and counted — never rendered before the
// ship that caused them.
func TestMergeTracesSkewClamp(t *testing.T) {
	primary := MemberTrace{Member: "a", Entries: mkEntries("a",
		TraceEntry{Seq: 5, Stage: "apply", At: 1000},
		TraceEntry{Seq: 5, Stage: "ship", At: 2000},
		TraceEntry{Seq: 5, Stage: "follower-ack", At: 5000},
	)}
	// No offset estimate (OffsetNs 0) and a follower clock far behind:
	// raw stamps land before the primary even shipped.
	follower := MemberTrace{Member: "b", Entries: mkEntries("b",
		TraceEntry{Seq: 5, Stage: "follower-wal-append", At: 100},
		TraceEntry{Seq: 5, Stage: "follower-ack", At: 9000}, // and one beyond the ack receipt
	)}
	m := MergeTraces("s", []MemberTrace{primary, follower})
	if m.SkewClamped != 2 {
		t.Fatalf("SkewClamped %d, want 2", m.SkewClamped)
	}
	ev := m.Events[0]
	for _, sp := range ev.Spans {
		if sp.Member != "b" {
			continue
		}
		if !sp.Clamped {
			t.Fatalf("follower span not flagged clamped: %+v", sp)
		}
		if sp.At < 2000 || sp.At > 5000 {
			t.Fatalf("clamped span outside causality window: %+v", sp)
		}
	}
	for _, sp := range ev.Spans {
		if sp.DurNs < 0 {
			t.Fatalf("negative duration survived the clamp: %+v", sp)
		}
	}
}

// TestMergeTracesOverlappingRings: the same (seq, member, stage) seen
// twice — a re-recorded ack, or two fetches of an overlapping ring —
// keeps its earliest timestamp instead of duplicating the span.
func TestMergeTracesOverlappingRings(t *testing.T) {
	a1 := MemberTrace{Member: "a", Entries: mkEntries("a",
		TraceEntry{Seq: 3, Stage: "apply", At: 500},
		TraceEntry{Seq: 3, Stage: "apply", At: 400}, // duplicate, earlier
	)}
	a2 := MemberTrace{Member: "a", Entries: mkEntries("a",
		TraceEntry{Seq: 3, Stage: "apply", At: 600}, // overlapping fetch, later
	)}
	m := MergeTraces("s", []MemberTrace{a1, a2})
	if len(m.Events) != 1 || len(m.Events[0].Spans) != 1 {
		t.Fatalf("duplicates not collapsed: %+v", m.Events)
	}
	if sp := m.Events[0].Spans[0]; sp.At != 400 {
		t.Fatalf("kept At %d, want earliest 400", sp.At)
	}
}

// TestMergeTracesDownMember: an owner-set member whose ring could not
// be fetched stays visible in the merge (Down, zero entries) instead of
// silently narrowing the timeline.
func TestMergeTracesDownMember(t *testing.T) {
	m := MergeTraces("s", []MemberTrace{
		{Member: "a", Entries: mkEntries("a", TraceEntry{Seq: 1, Stage: "apply", At: 10})},
		{Member: "b", Down: true},
	})
	if len(m.Members) != 2 {
		t.Fatalf("members: %+v", m.Members)
	}
	var down *TraceMemberInfo
	for i := range m.Members {
		if m.Members[i].Member == "b" {
			down = &m.Members[i]
		}
	}
	if down == nil || !down.Down || down.Entries != 0 {
		t.Fatalf("down member misreported: %+v", m.Members)
	}
	if len(m.Events) != 1 {
		t.Fatalf("live member's events lost: %+v", m.Events)
	}
}

// TestMergeTracesWraparoundMidMerge: one member's ring wrapped past the
// early seqs the other still retains — merged events cover the union,
// and seqs only one member retains still render as partial timelines.
func TestMergeTracesWraparoundMidMerge(t *testing.T) {
	small := NewTracer(4)
	big := NewTracer(64)
	for seq := int64(1); seq <= 10; seq++ {
		small.RecordAt(seq, StageApply, seq*100)
		big.RecordAt(seq, StageEnqueue, seq*100-50)
	}
	es := small.Entries(-1 << 63)
	for i := range es {
		es[i].Member = "a"
	}
	eb := big.Entries(-1 << 63)
	for i := range eb {
		eb[i].Member = "b"
	}
	m := MergeTraces("s", []MemberTrace{{Member: "a", Entries: es}, {Member: "b", Entries: eb}})
	if len(m.Events) != 10 {
		t.Fatalf("want the union of both rings (10 seqs), got %d", len(m.Events))
	}
	for _, ev := range m.Events {
		switch {
		case ev.Seq <= 6: // wrapped out of the small ring: enqueue only
			if len(ev.Spans) != 1 || ev.Spans[0].Stage != "enqueue" {
				t.Fatalf("seq %d should be partial (enqueue only): %+v", ev.Seq, ev.Spans)
			}
		default: // both rings retain it
			if len(ev.Spans) != 2 {
				t.Fatalf("seq %d should have both spans: %+v", ev.Seq, ev.Spans)
			}
		}
	}
}

// TestTraceHandlerSinceSeq: the debug endpoint's ?since_seq= filter
// narrows the dump, and a non-integer value is a 400.
func TestTraceHandlerSinceSeq(t *testing.T) {
	hub := NewTraceHub(16)
	hub.SetMember("m1")
	tr := hub.Tracer("s")
	for seq := int64(1); seq <= 5; seq++ {
		tr.RecordAt(seq, StageApply, seq)
	}
	get := func(query string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		hub.Handler("/debug/trace/").ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace/s"+query, nil))
		return rr
	}
	rr := get("?since_seq=4")
	entries, err := ParseTrace(rr.Body.Bytes())
	if err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, rr.Body.String())
	}
	if len(entries) != 2 || entries[0].Seq != 4 || entries[1].Seq != 5 {
		t.Fatalf("since_seq=4 returned %+v", entries)
	}
	for _, e := range entries {
		if e.Member != "m1" {
			t.Fatalf("entry lacks member identity: %+v", e)
		}
	}
	if rr := get("?since_seq=nope"); rr.Code != 400 {
		t.Fatalf("bad since_seq answered %d, want 400", rr.Code)
	}
}

// TestSlowRing: only events beyond the threshold are retained, the
// snapshot is slowest-first, the ring wraps, and the handler serves the
// dump shape cdmatop reads.
func TestSlowRing(t *testing.T) {
	r := NewSlowRing(3, 100)
	r.Note("s", 1, 99) // under threshold: dropped
	r.Note("s", 2, 150)
	r.Note("s", 3, 300)
	r.Note("s", 4, 200)
	if got := r.Snapshot(); len(got) != 3 || got[0].Seq != 3 || got[1].Seq != 4 || got[2].Seq != 2 {
		t.Fatalf("snapshot not slowest-first: %+v", got)
	}
	r.Note("s", 5, 500) // wraps: overwrites the oldest slot
	got := r.Snapshot()
	if len(got) != 3 || got[0].Seq != 5 {
		t.Fatalf("post-wrap snapshot: %+v", got)
	}
	for _, e := range got {
		if e.Seq == 2 {
			t.Fatalf("wrap kept the overwritten slot: %+v", got)
		}
	}

	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slowest", nil))
	var dump struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Events      []SlowEvent `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
		t.Fatalf("handler body: %v\n%s", err, rr.Body.String())
	}
	if dump.ThresholdNs != 100 || len(dump.Events) != 3 {
		t.Fatalf("dump: %+v", dump)
	}

	// Nil ring: no-ops and an empty dump.
	var nr *SlowRing
	nr.Note("s", 1, 1<<60)
	if nr.Snapshot() != nil {
		t.Fatal("nil ring snapshot not empty")
	}
	rr = httptest.NewRecorder()
	nr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slowest", nil))
	if !strings.Contains(rr.Body.String(), `"events":[]`) {
		t.Fatalf("nil ring handler: %s", rr.Body.String())
	}
}

// TestHistogramExemplar: the worst recent observation and its seq are
// retained, smaller ones are not, and the registry surfaces them at
// /debug/exemplars keyed by family and label set.
func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("apply_seconds", "t", nil, "session", "s")
	if _, _, _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram claims an exemplar")
	}
	h.ObserveExemplar(0.010, 7)
	h.ObserveExemplar(0.250, 42) // new worst
	h.ObserveExemplar(0.100, 99) // smaller: not retained
	v, seq, at, ok := h.Exemplar()
	if !ok || v != 0.250 || seq != 42 || at == 0 {
		t.Fatalf("exemplar (%v, %d, %d, %v), want (0.25, 42, >0, true)", v, seq, at, ok)
	}
	if h.Count() != 3 {
		t.Fatalf("ObserveExemplar must still observe: count %d", h.Count())
	}

	// A second series with no exemplar yet stays omitted.
	reg.Histogram("apply_seconds", "t", nil, "session", "idle")
	ex := reg.Exemplars()
	if len(ex) != 1 || ex[0].Seq != 42 || ex[0].Labels != `session="s"` {
		t.Fatalf("registry exemplars: %+v", ex)
	}
	rr := httptest.NewRecorder()
	reg.ExemplarHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/exemplars", nil))
	var out []HistogramExemplar
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil || len(out) != 1 || out[0].Family != "apply_seconds" {
		t.Fatalf("exemplar endpoint: err %v body %s", err, rr.Body.String())
	}

	// Nil receivers stay no-ops.
	var nh *Histogram
	nh.ObserveExemplar(1, 1)
	if _, _, _, ok := nh.Exemplar(); ok {
		t.Fatal("nil histogram claims an exemplar")
	}
}

// FuzzTraceJSONRoundTrip: whatever a tracer records, WriteJSON emits
// parseable JSON and ParseTrace reads back exactly the entries Entries
// reports — the contract the fleet collector depends on.
func FuzzTraceJSONRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, "m1")
	f.Add([]byte{}, "")
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 9, 9, 9, 9, 9}, `we"ird\member`)
	f.Fuzz(func(t *testing.T, ops []byte, member string) {
		tr := newMemberTracer(8, member)
		seq := int64(0)
		for _, b := range ops {
			// Derive (seq delta, stage, at) from each fuzz byte; seq may go
			// negative and at may be huge — both must round-trip.
			seq += int64(int8(b))
			tr.RecordAt(seq, TraceStage(b%12), int64(b)<<52)
		}
		var sb strings.Builder
		if err := tr.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		got, err := ParseTrace([]byte(sb.String()))
		if err != nil {
			t.Fatalf("emitted JSON does not parse: %v\n%s", err, sb.String())
		}
		want := tr.Entries(-1 << 63)
		if len(got) != len(want) {
			t.Fatalf("round trip: %d entries, want %d", len(got), len(want))
		}
		// The JSON layer replaces each invalid UTF-8 byte in the member
		// with U+FFFD (encoding/json's contract; note: per byte, unlike
		// strings.ToValidUTF8); everything else is exact.
		var mb strings.Builder
		for _, r := range member {
			mb.WriteRune(r)
		}
		wantMember := mb.String()
		for i := range want {
			w := want[i]
			if w.Member != "" {
				w.Member = wantMember
			}
			if got[i] != w {
				t.Fatalf("entry %d: got %+v want %+v", i, got[i], w)
			}
		}
	})
}
