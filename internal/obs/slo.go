package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Selector names a metric family plus the label subset its series must
// carry to count toward an objective.
type Selector struct {
	Name   string
	Labels map[string]string
}

// Objective is one declarative SLO: a target fraction of good events
// over a sliding window, breached when the error-budget burn rate
// reaches BurnAlert. Exactly one of the two shapes is used:
//
//   - Ratio: Good and Total name counters (good/total over the window).
//   - Latency: Latency names a histogram; an observation is good when
//     it lands at or under Threshold seconds.
type Objective struct {
	Name string

	// Ratio shape.
	Good  Selector
	Total Selector

	// Latency shape.
	Latency   Selector
	Threshold float64

	// Target is the good fraction promised, e.g. 0.999. Window is the
	// sliding evaluation window (default 5m). BurnAlert is the burn
	// rate that flips Breached (default 1: the window is consuming
	// budget faster than steady state allows).
	Target    float64
	Window    time.Duration
	BurnAlert float64

	// Critical objectives degrade /readyz while breached.
	Critical bool
}

// Verdict is one objective's evaluation, the JSON served by GET /slo.
type Verdict struct {
	Name          string  `json:"name"`
	Target        float64 `json:"target"`
	WindowSeconds float64 `json:"window_seconds"`
	Good          float64 `json:"good"`
	Total         float64 `json:"total"`
	Ratio         float64 `json:"ratio"`
	BurnRate      float64 `json:"burn_rate"`
	Breached      bool    `json:"breached"`
	Critical      bool    `json:"critical"`
}

// sloSnap is one cumulative (good, total) reading per objective.
type sloSnap struct {
	at          time.Time
	good, total []float64
}

// SLO evaluates objectives in-process against a Registry. Tick scrapes
// the registry (off every hot path — it is the same render a /metrics
// GET performs), keeps a short history of cumulative counts, and
// derives windowed ratios and burn rates by differencing. Critical
// breaches degrade the attached Health until they clear.
type SLO struct {
	mu         sync.Mutex
	reg        *Registry
	health     *Health
	objectives []Objective
	snaps      []sloSnap
	verdicts   []Verdict
	at         time.Time
	degraded   bool
	maxWindow  time.Duration
}

// maxBurnRate caps the reported burn rate — a zero-budget objective
// with any error would otherwise be +Inf, which JSON cannot encode.
const maxBurnRate = 1e9

// sloReasonPrefix marks /readyz degradations owned by the SLO engine,
// so recovery never clobbers an unrelated not-ready reason (drain).
const sloReasonPrefix = "slo breach: "

// NewSLO builds an engine over reg. health may be nil (no /readyz
// degradation). Objectives get defaults: Window 5m, BurnAlert 1.
func NewSLO(reg *Registry, health *Health, objectives ...Objective) *SLO {
	s := &SLO{reg: reg, health: health}
	for _, o := range objectives {
		if o.Window <= 0 {
			o.Window = 5 * time.Minute
		}
		if o.BurnAlert <= 0 {
			o.BurnAlert = 1
		}
		if o.Window > s.maxWindow {
			s.maxWindow = o.Window
		}
		s.objectives = append(s.objectives, o)
	}
	return s
}

// Tick takes one registry snapshot at now and re-evaluates every
// objective. Call it periodically (a second or two is plenty); it is
// concurrency-safe and never touches instrumented hot paths.
func (s *SLO) Tick(now time.Time) {
	if s == nil {
		return
	}
	scrape, err := ParseScrape(s.reg.Render())
	if err != nil {
		return
	}
	s.mu.Lock()
	snap := sloSnap{
		at:    now,
		good:  make([]float64, len(s.objectives)),
		total: make([]float64, len(s.objectives)),
	}
	for i, o := range s.objectives {
		snap.good[i], snap.total[i] = cumulativePair(scrape, o)
	}
	s.snaps = append(s.snaps, snap)
	// Keep one snapshot at or before every objective's window start so
	// the delta spans the full window once enough history exists.
	horizon := now.Add(-s.maxWindow)
	for len(s.snaps) >= 2 && !s.snaps[1].at.After(horizon) {
		s.snaps = s.snaps[1:]
	}

	verdicts := make([]Verdict, len(s.objectives))
	var breachedCritical []string
	for i, o := range s.objectives {
		base := s.baseline(now.Add(-o.Window))
		good := snap.good[i] - base.good[i]
		total := snap.total[i] - base.total[i]
		v := Verdict{
			Name:          o.Name,
			Target:        o.Target,
			WindowSeconds: o.Window.Seconds(),
			Good:          good,
			Total:         total,
			Ratio:         1,
			Critical:      o.Critical,
		}
		if total > 0 {
			v.Ratio = good / total
			errRate := 1 - v.Ratio
			if budget := 1 - o.Target; budget > 0 {
				v.BurnRate = errRate / budget
			} else if errRate > 0 {
				v.BurnRate = maxBurnRate
			}
			// JSON has no +Inf; cap so the verdict always encodes.
			if v.BurnRate > maxBurnRate {
				v.BurnRate = maxBurnRate
			}
			v.Breached = v.BurnRate >= o.BurnAlert
		}
		if v.Breached && o.Critical {
			breachedCritical = append(breachedCritical, o.Name)
		}
		verdicts[i] = v
	}
	s.verdicts = verdicts
	s.at = now
	s.applyHealth(breachedCritical)
	s.mu.Unlock()
}

// baseline returns the newest snapshot at or before start, falling
// back to the oldest history we have (a short-lived process evaluates
// over its whole life until the window fills).
func (s *SLO) baseline(start time.Time) sloSnap {
	base := s.snaps[0]
	for _, sn := range s.snaps {
		if sn.at.After(start) {
			break
		}
		base = sn
	}
	return base
}

// applyHealth degrades /readyz on critical breaches and restores it
// once they clear — but only if the not-ready reason is still ours, so
// the engine never resurrects a member that is draining. Caller holds
// s.mu.
func (s *SLO) applyHealth(breached []string) {
	if s.health == nil {
		return
	}
	if len(breached) > 0 {
		s.health.Set(false, sloReasonPrefix+strings.Join(breached, ","))
		s.degraded = true
		return
	}
	if !s.degraded {
		return
	}
	s.degraded = false
	if _, reason := s.health.Ready(); strings.HasPrefix(reason, sloReasonPrefix) {
		s.health.Set(true, "")
	}
}

// cumulativePair extracts an objective's cumulative (good, total) from
// one scrape.
func cumulativePair(sc *Scrape, o Objective) (good, total float64) {
	if o.Latency.Name != "" {
		return histogramPair(sc, o.Latency, o.Threshold)
	}
	return sc.Sum(o.Good.Name, o.Good.Labels), sc.Sum(o.Total.Name, o.Total.Labels)
}

// histogramPair counts observations at or under threshold (good) and
// overall (total) by reading the histogram's cumulative buckets: good
// is the count in the smallest bucket whose bound covers threshold,
// summed across matching series.
func histogramPair(sc *Scrape, sel Selector, threshold float64) (good, total float64) {
	total = sc.Sum(sel.Name+"_count", sel.Labels)
	merged := map[float64]float64{}
	for _, smp := range sc.Samples {
		if !smp.matches(sel.Name+"_bucket", sel.Labels) {
			continue
		}
		merged[leValue(smp.Labels)] += smp.Value
	}
	bestLe := math.Inf(1)
	for le := range merged {
		if le >= threshold && le < bestLe {
			bestLe = le
		}
	}
	if cum, ok := merged[bestLe]; ok {
		good = cum
	} else if len(merged) == 0 {
		good = total // no buckets at all: nothing observed over threshold
	}
	return good, total
}

// Verdicts returns the latest evaluation (nil before the first Tick).
func (s *SLO) Verdicts() []Verdict {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Verdict, len(s.verdicts))
	copy(out, s.verdicts)
	return out
}

// Handler serves GET /slo: {"at": ..., "verdicts": [...]}. A nil
// engine serves an empty verdict list.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var at time.Time
		verdicts := []Verdict{}
		if s != nil {
			s.mu.Lock()
			at = s.at
			verdicts = append(verdicts, s.verdicts...)
			s.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			At       time.Time `json:"at"`
			Verdicts []Verdict `json:"verdicts"`
		}{at, verdicts})
	})
}
