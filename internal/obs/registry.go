package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry names and renders metrics. Registration (Counter, Gauge,
// Histogram) takes a lock and may allocate — it happens at session or
// node setup, not on hot paths; the returned metric pointers are then
// updated lock-free. Registering the same (name, labels) again returns
// the SAME metric, so a session recreated through recovery or promotion
// keeps its cumulative series. A nil *Registry hands out nil metrics
// (no-ops everywhere), which is how the whole layer compiles out when
// no registry is attached.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeFloatGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge, typeFloatGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name     string
	help     string
	typ      metricType
	children map[string]*child // keyed by rendered label string
}

type child struct {
	labels string // `a="b",c="d"` (no braces) or ""
	c      *Counter
	g      *Gauge
	gf     *FloatGauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders variadic k,v pairs as `k="v",...` with Prometheus
// label-value escaping. Pairs must come in key, value order; a trailing
// odd key is ignored.
func labelString(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		escapeLabel(&b, labels[i+1])
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

func (r *Registry) child(name, help string, typ metricType, bounds []float64, labels []string) *child {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labelString(labels)
	ch := f.children[key]
	if ch == nil {
		ch = &child{labels: key}
		switch typ {
		case typeCounter:
			ch.c = &Counter{}
		case typeGauge:
			ch.g = &Gauge{}
		case typeFloatGauge:
			ch.gf = &FloatGauge{}
		case typeHistogram:
			ch.h = NewHistogram(bounds)
		}
		f.children[key] = ch
	}
	return ch
}

// Counter registers (or finds) a counter. labels are key, value pairs.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.child(name, help, typeCounter, nil, labels).c
}

// Gauge registers (or finds) a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.child(name, help, typeGauge, nil, labels).g
}

// FloatGauge registers (or finds) a float-valued gauge (rendered with
// TYPE gauge). Returns nil on a nil registry.
func (r *Registry) FloatGauge(name, help string, labels ...string) *FloatGauge {
	if r == nil {
		return nil
	}
	return r.child(name, help, typeFloatGauge, nil, labels).gf
}

// Histogram registers (or finds) a histogram over bounds (nil means
// DefLatencyBuckets; bounds are fixed at first registration). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.child(name, help, typeHistogram, bounds, labels).h
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), families and children in
// sorted order so the output is golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type flatChild struct {
		labels string
		c      *Counter
		g      *Gauge
		gf     *FloatGauge
		h      *Histogram
	}
	type flatFamily struct {
		name, help string
		typ        metricType
		children   []flatChild
	}
	fams := make([]flatFamily, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ff := flatFamily{name: f.name, help: f.help, typ: f.typ}
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ch := f.children[k]
			ff.children = append(ff.children, flatChild{labels: ch.labels, c: ch.c, g: ch.g, gf: ch.gf, h: ch.h})
		}
		fams = append(fams, ff)
	}
	r.mu.Unlock()

	var b []byte
	for _, f := range fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = appendEscapedHelp(b, f.help)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ.String()...)
		b = append(b, '\n')
		for _, ch := range f.children {
			switch f.typ {
			case typeCounter:
				b = appendSample(b, f.name, "", ch.labels, "", float64(ch.c.Value()), true)
			case typeGauge:
				b = appendSample(b, f.name, "", ch.labels, "", float64(ch.g.Value()), true)
			case typeFloatGauge:
				b = appendSample(b, f.name, "", ch.labels, "", ch.gf.Value(), false)
			case typeHistogram:
				cum := int64(0)
				for i := range ch.h.buckets {
					cum += ch.h.buckets[i].Load()
					le := "+Inf"
					if i < len(ch.h.bounds) {
						le = formatFloat(ch.h.bounds[i])
					}
					b = appendSample(b, f.name, "_bucket", ch.labels, le, float64(cum), true)
				}
				b = appendSample(b, f.name, "_sum", ch.labels, "", ch.h.Sum(), false)
				b = appendSample(b, f.name, "_count", ch.labels, "", float64(ch.h.Count()), true)
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// appendSample renders one sample line. le != "" appends an le label;
// integer=true renders the value without a fractional part.
func appendSample(b []byte, name, suffix, labels, le string, v float64, integer bool) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if labels != "" || le != "" {
		b = append(b, '{')
		b = append(b, labels...)
		if le != "" {
			if labels != "" {
				b = append(b, ',')
			}
			b = append(b, `le="`...)
			b = append(b, le...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	if integer && v == float64(int64(v)) {
		b = strconv.AppendInt(b, int64(v), 10)
	} else {
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	b = append(b, '\n')
	return b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendEscapedHelp renders HELP text with exposition-format escaping
// (`\\` and `\n`) — a newline in a help string must not fabricate a
// sample line.
func appendEscapedHelp(b []byte, help string) []byte {
	for i := 0; i < len(help); i++ {
		switch help[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, help[i])
		}
	}
	return b
}

// HistogramExemplar is one histogram series' retained worst-recent
// observation — the JSON shape of GET /debug/exemplars. Labels is the
// series' rendered label string (`session="x"`), so a p99 spotted on
// /metrics resolves to the (session, seq) whose timeline
// /cluster/trace/{session}?since_seq={seq} fetches.
type HistogramExemplar struct {
	Family string  `json:"family"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	Seq    int64   `json:"seq"`
	At     int64   `json:"at_unix_ns"`
}

// Exemplars collects every histogram series' retained exemplar, sorted
// by (family, labels). Series that never retained one are omitted.
func (r *Registry) Exemplars() []HistogramExemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var hs []struct {
		family, labels string
		h              *Histogram
	}
	for name, f := range r.families {
		if f.typ != typeHistogram {
			continue
		}
		for _, ch := range f.children {
			hs = append(hs, struct {
				family, labels string
				h              *Histogram
			}{name, ch.labels, ch.h})
		}
	}
	r.mu.Unlock()
	var out []HistogramExemplar
	for _, e := range hs {
		if v, seq, at, ok := e.h.Exemplar(); ok {
			out = append(out, HistogramExemplar{Family: e.family, Labels: e.labels, Value: v, Seq: seq, At: at})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// ExemplarHandler serves GET /debug/exemplars: the retained worst-recent
// observation of every histogram series, as JSON. A nil registry serves
// an empty list.
func (r *Registry) ExemplarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		ex := r.Exemplars()
		if ex == nil {
			ex = []HistogramExemplar{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ex)
	})
}

// Render returns the full exposition as a string (handy for in-process
// scraping — the load generator's report path).
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

// Handler returns the GET /metrics handler for this registry. A nil
// registry serves an empty exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
