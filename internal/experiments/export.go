package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits a figure as CSV: header "x,<label>,<label>_ci95,...",
// one row per x value. The CSV round-trips through ReadCSV.
func WriteCSV(w io.Writer, fig Figure) error {
	cw := csv.NewWriter(w)
	header := []string{"x"}
	for _, s := range fig.Series {
		header = append(header, s.Label, s.Label+"_ci95")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(fig.Series) > 0 {
		for i, x := range fig.Series[0].X {
			row := []string{formatFloat(x)}
			for _, s := range fig.Series {
				row = append(row, formatFloat(s.Y[i]), formatFloat(s.Err[i]))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a figure previously written by WriteCSV. Only the
// series data is recovered (labels, X, Y, Err); figure metadata is not
// stored in the CSV.
func ReadCSV(r io.Reader) (Figure, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return Figure{}, err
	}
	if len(records) == 0 {
		return Figure{}, fmt.Errorf("experiments: empty CSV")
	}
	header := records[0]
	if len(header) < 3 || header[0] != "x" || (len(header)-1)%2 != 0 {
		return Figure{}, fmt.Errorf("experiments: malformed CSV header %v", header)
	}
	nSeries := (len(header) - 1) / 2
	fig := Figure{}
	for s := 0; s < nSeries; s++ {
		label := header[1+2*s]
		if header[2+2*s] != label+"_ci95" {
			return Figure{}, fmt.Errorf("experiments: malformed CI column for %q", label)
		}
		fig.Series = append(fig.Series, Series{Label: label})
	}
	for ri, row := range records[1:] {
		if len(row) != len(header) {
			return Figure{}, fmt.Errorf("experiments: row %d has %d fields, want %d", ri+1, len(row), len(header))
		}
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return Figure{}, fmt.Errorf("experiments: row %d x: %w", ri+1, err)
		}
		for s := 0; s < nSeries; s++ {
			y, err := strconv.ParseFloat(row[1+2*s], 64)
			if err != nil {
				return Figure{}, fmt.Errorf("experiments: row %d series %d: %w", ri+1, s, err)
			}
			ci, err := strconv.ParseFloat(row[2+2*s], 64)
			if err != nil {
				return Figure{}, fmt.Errorf("experiments: row %d series %d ci: %w", ri+1, s, err)
			}
			fig.Series[s].X = append(fig.Series[s].X, x)
			fig.Series[s].Y = append(fig.Series[s].Y, y)
			fig.Series[s].Err = append(fig.Series[s].Err, ci)
		}
	}
	return fig, nil
}

// WriteGnuplot emits a self-contained gnuplot script (data inlined via
// heredoc) that renders the figure with error bars, mirroring the
// paper's plot style.
func WriteGnuplot(w io.Writer, fig Figure) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure %s — %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "set title %q\n", fig.Title)
	fmt.Fprintf(&b, "set xlabel %q\n", fig.XLabel)
	fmt.Fprintf(&b, "set ylabel %q\n", fig.YLabel)
	fmt.Fprintf(&b, "set key top left\nset grid\n")
	var plots []string
	for i, s := range fig.Series {
		plots = append(plots, fmt.Sprintf("$data%d with yerrorlines title %q", i, s.Label))
	}
	for i, s := range fig.Series {
		fmt.Fprintf(&b, "$data%d << EOD\n", i)
		for j := range s.X {
			fmt.Fprintf(&b, "%s %s %s\n", formatFloat(s.X[j]), formatFloat(s.Y[j]), formatFloat(s.Err[j]))
		}
		fmt.Fprintf(&b, "EOD\n")
	}
	fmt.Fprintf(&b, "plot %s\n", strings.Join(plots, ", \\\n     "))
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}
