// Package experiments regenerates every figure of the paper's section 5
// evaluation: Fig 10(a-f) for node joins, Fig 11(a-c) for power-range
// increases, and Fig 12(a-d) for node movement. Each figure function
// returns the plotted series (one per strategy); every point is the mean
// over cfg.Runs randomly generated networks, exactly as in the paper
// ("all points on all plots are the average of the metric measured over
// 100 runs").
//
// Runs are independent and fan out across a bounded worker pool sized to
// the machine (the per-run work is the simulation of three strategies on
// an identical event script).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Config controls an experiment sweep.
type Config struct {
	Runs     int    // networks per plotted point (paper: 100)
	Seed     uint64 // master seed; run i of point j derives its own stream
	Workers  int    // parallel runs; 0 means GOMAXPROCS
	Validate bool   // re-verify CA1/CA2 after every event (slow)
}

// DefaultConfig returns the paper's run count with a fixed master seed.
func DefaultConfig() Config {
	return Config{Runs: 100, Seed: 20010113}
}

// workers resolves the worker-pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Series is one plotted line: a strategy's metric across the x sweep.
type Series struct {
	Label string
	X     []float64
	Y     []float64       // mean over runs
	Err   []float64       // 95% CI half-width over runs
	Raw   []stats.Summary // full per-point summaries
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// point is one (x index, strategy) cell of a sweep, aggregated over runs.
type point struct {
	acc map[sim.StrategyName]*stats.Accumulator
	mu  sync.Mutex
}

func newPoint() *point {
	p := &point{acc: make(map[sim.StrategyName]*stats.Accumulator)}
	for _, n := range sim.AllStrategies {
		p.acc[n] = &stats.Accumulator{}
	}
	return p
}

func (p *point) add(name sim.StrategyName, v float64) {
	p.mu.Lock()
	p.acc[name].Add(v)
	p.mu.Unlock()
}

// sweep runs cfg.Runs simulations for every x value, extracting one
// metric per strategy per run via extract. The scripts function builds
// the (base, phase) event scripts for a given x value and per-run seed.
func sweep(
	cfg Config,
	xs []float64,
	scripts func(x float64, seed uint64) (base, phase []strategy.Event),
	extract func(r sim.PhaseResult) float64,
	strategies []sim.StrategyName,
) ([]Series, error) {
	points := make([]*point, len(xs))
	for i := range points {
		points[i] = newPoint()
	}

	type job struct {
		xi  int
		run int
	}
	jobs := make(chan job)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	master := xrand.New(cfg.Seed)
	// Pre-derive per-(point, run) seeds deterministically, independent of
	// scheduling order.
	seeds := make([][]uint64, len(xs))
	for i := range xs {
		seeds[i] = make([]uint64, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			seeds[i][r] = master.Uint64()
		}
	}

	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				base, phase := scripts(xs[j.xi], seeds[j.xi][j.run])
				results, err := sim.RunPhases(strategies, base, phase, cfg.Validate)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				for _, r := range results {
					points[j.xi].add(r.Name, extract(r))
				}
			}
		}()
	}
	for xi := range xs {
		for r := 0; r < cfg.Runs; r++ {
			jobs <- job{xi, r}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	series := make([]Series, 0, len(strategies))
	for _, name := range strategies {
		s := Series{Label: string(name), X: append([]float64(nil), xs...)}
		for xi := range xs {
			sum := points[xi].acc[name].Summary()
			s.Y = append(s.Y, sum.Mean)
			s.Err = append(s.Err, sum.CI95())
			s.Raw = append(s.Raw, sum)
		}
		series = append(series, s)
	}
	return series, nil
}

// ---- Fig 10: node join (section 5.1) ----

// fig10NValues is the paper's x axis for Figs 10(a-c).
func fig10NValues() []float64 {
	return []float64{40, 50, 60, 70, 80, 90, 100, 110, 120}
}

// fig10AvgRValues is the paper's x axis for Figs 10(d-f): average range
// (minr+maxr)/2 with maxr-minr = 5.
func fig10AvgRValues() []float64 {
	return []float64{5, 15, 25, 35, 45, 55, 65}
}

func joinScriptsForN(x float64, seed uint64) ([]strategy.Event, []strategy.Event) {
	p := workload.Defaults()
	p.N = int(x)
	return workload.JoinScript(seed, p), nil
}

func joinScriptsForAvgR(x float64, seed uint64) ([]strategy.Event, []strategy.Event) {
	p := workload.Defaults()
	p.N = 100
	p.MinR = x - 2.5
	p.MaxR = x + 2.5
	if p.MinR < 0 {
		p.MinR = 0
	}
	return workload.JoinScript(seed, p), nil
}

func extractMaxColor(r sim.PhaseResult) float64       { return float64(r.Final.MaxColor) }
func extractRecodings(r sim.PhaseResult) float64      { return float64(r.Final.TotalRecodings) }
func extractDeltaMaxColor(r sim.PhaseResult) float64  { return float64(r.DeltaMaxColor()) }
func extractDeltaRecodings(r sim.PhaseResult) float64 { return float64(r.DeltaRecodings()) }

// Fig10a: maximum color index vs number of stations N (Minim, CP, BBB).
func Fig10a(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig10NValues(), joinScriptsForN, extractMaxColor, sim.AllStrategies)
	return Figure{
		ID: "10a", Title: "Node join: total colors vs N",
		XLabel: "Number of Stations N", YLabel: "Max Color Index Assigned",
		Series: s,
	}, err
}

// Fig10b: total recodings vs N (Minim, CP, BBB).
func Fig10b(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig10NValues(), joinScriptsForN, extractRecodings, sim.AllStrategies)
	return Figure{
		ID: "10b", Title: "Node join: recodings vs N",
		XLabel: "Number of Stations N", YLabel: "Total Number of Recodings",
		Series: s,
	}, err
}

// Fig10c: total recodings vs N, distributed strategies only (Minim, CP).
func Fig10c(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig10NValues(), joinScriptsForN, extractRecodings,
		[]sim.StrategyName{sim.Minim, sim.CP})
	return Figure{
		ID: "10c", Title: "Node join: recodings vs N (distributed only)",
		XLabel: "Number of Stations N", YLabel: "Total Number of Recodings",
		Series: s,
	}, err
}

// Fig10d: maximum color index vs average range (Minim, CP, BBB).
func Fig10d(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig10AvgRValues(), joinScriptsForAvgR, extractMaxColor, sim.AllStrategies)
	return Figure{
		ID: "10d", Title: "Node join: total colors vs average range",
		XLabel: "Avg R", YLabel: "Max Color Index Assigned",
		Series: s,
	}, err
}

// Fig10e: total recodings vs average range (Minim, CP, BBB).
func Fig10e(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig10AvgRValues(), joinScriptsForAvgR, extractRecodings, sim.AllStrategies)
	return Figure{
		ID: "10e", Title: "Node join: recodings vs average range",
		XLabel: "Avg R", YLabel: "Total Number of Recodings",
		Series: s,
	}, err
}

// Fig10f: total recodings vs average range (Minim, CP).
func Fig10f(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig10AvgRValues(), joinScriptsForAvgR, extractRecodings,
		[]sim.StrategyName{sim.Minim, sim.CP})
	return Figure{
		ID: "10f", Title: "Node join: recodings vs average range (distributed only)",
		XLabel: "Avg R", YLabel: "Total Number of Recodings",
		Series: s,
	}, err
}

// ---- Fig 11: power range increase (section 5.2) ----

// fig11RaiseFactors is the paper's x axis for Fig 11.
func fig11RaiseFactors() []float64 {
	return []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 5.5, 6}
}

func raiseScripts(x float64, seed uint64) ([]strategy.Event, []strategy.Event) {
	p := workload.Defaults() // N=100, ranges (20.5, 30.5), as in the paper
	p.RaiseFactor = x
	return workload.JoinScript(seed, p), workload.PowerRaiseScript(seed, p)
}

// Fig11a: Δ(max color index) vs raisefactor (Minim, CP, BBB).
func Fig11a(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig11RaiseFactors(), raiseScripts, extractDeltaMaxColor, sim.AllStrategies)
	return Figure{
		ID: "11a", Title: "Power increase: Δ(max color) vs raisefactor",
		XLabel: "raisefactor", YLabel: "Delta(Max Color Index Assigned)",
		Series: s,
	}, err
}

// Fig11b: Δ(total recodings) vs raisefactor (Minim, CP, BBB).
func Fig11b(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig11RaiseFactors(), raiseScripts, extractDeltaRecodings, sim.AllStrategies)
	return Figure{
		ID: "11b", Title: "Power increase: Δ(recodings) vs raisefactor",
		XLabel: "raisefactor", YLabel: "Delta(Total Number of Recodings)",
		Series: s,
	}, err
}

// Fig11c: Δ(total recodings) vs raisefactor (Minim, CP).
func Fig11c(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig11RaiseFactors(), raiseScripts, extractDeltaRecodings,
		[]sim.StrategyName{sim.Minim, sim.CP})
	return Figure{
		ID: "11c", Title: "Power increase: Δ(recodings) vs raisefactor (distributed only)",
		XLabel: "raisefactor", YLabel: "Delta(Total Number of Recodings)",
		Series: s,
	}, err
}

// ---- Fig 12: node movement (section 5.3) ----

// fig12MaxDispValues is the paper's x axis for Fig 12(a).
func fig12MaxDispValues() []float64 {
	return []float64{0, 10, 20, 30, 40, 50, 60, 70, 80}
}

// fig12RoundValues is the paper's x axis for Figs 12(b-d).
func fig12RoundValues() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}

// moveParams is the paper's section 5.3 base: N=40, ranges (20.5, 30.5).
func moveParams() workload.Params {
	p := workload.Defaults()
	p.N = 40
	return p
}

func moveScriptsByDisp(x float64, seed uint64) ([]strategy.Event, []strategy.Event) {
	p := moveParams()
	p.MaxDisp = x
	p.RoundNo = 1
	return workload.JoinScript(seed, p), workload.MoveScript(seed, p)
}

func moveScriptsByRounds(x float64, seed uint64) ([]strategy.Event, []strategy.Event) {
	p := moveParams()
	p.MaxDisp = 40
	p.RoundNo = int(x)
	return workload.JoinScript(seed, p), workload.MoveScript(seed, p)
}

// Fig12a: Δ(recodings) vs maxdisp with RoundNo=1 (Minim, CP).
func Fig12a(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig12MaxDispValues(), moveScriptsByDisp, extractDeltaRecodings,
		[]sim.StrategyName{sim.Minim, sim.CP})
	return Figure{
		ID: "12a", Title: "Movement: Δ(recodings) vs maxdisp",
		XLabel: "maxdisp", YLabel: "Delta(Total Number of Recodings)",
		Series: s,
	}, err
}

// Fig12b: Δ(max color) vs RoundNo with maxdisp=40 (Minim, CP, BBB).
func Fig12b(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig12RoundValues(), moveScriptsByRounds, extractDeltaMaxColor, sim.AllStrategies)
	return Figure{
		ID: "12b", Title: "Movement: Δ(max color) vs RoundNo",
		XLabel: "RoundNo", YLabel: "Delta(Max Color Index Assigned)",
		Series: s,
	}, err
}

// Fig12c: Δ(recodings) vs RoundNo (Minim, CP, BBB).
func Fig12c(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig12RoundValues(), moveScriptsByRounds, extractDeltaRecodings, sim.AllStrategies)
	return Figure{
		ID: "12c", Title: "Movement: Δ(recodings) vs RoundNo",
		XLabel: "RoundNo", YLabel: "Delta(Total Number of Recodings)",
		Series: s,
	}, err
}

// Fig12d: Δ(recodings) vs RoundNo (Minim, CP).
func Fig12d(cfg Config) (Figure, error) {
	s, err := sweep(cfg, fig12RoundValues(), moveScriptsByRounds, extractDeltaRecodings,
		[]sim.StrategyName{sim.Minim, sim.CP})
	return Figure{
		ID: "12d", Title: "Movement: Δ(recodings) vs RoundNo (distributed only)",
		XLabel: "RoundNo", YLabel: "Delta(Total Number of Recodings)",
		Series: s,
	}, err
}

// All regenerates every paper figure in order.
func All(cfg Config) ([]Figure, error) {
	funcs := []func(Config) (Figure, error){
		Fig10a, Fig10b, Fig10c, Fig10d, Fig10e, Fig10f,
		Fig11a, Fig11b, Fig11c,
		Fig12a, Fig12b, Fig12c, Fig12d,
	}
	figs := make([]Figure, 0, len(funcs))
	for _, f := range funcs {
		fig, err := f(cfg)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// ByID regenerates a single figure by its paper ID (e.g. "10a").
func ByID(id string, cfg Config) (Figure, error) {
	switch id {
	case "10a":
		return Fig10a(cfg)
	case "10b":
		return Fig10b(cfg)
	case "10c":
		return Fig10c(cfg)
	case "10d":
		return Fig10d(cfg)
	case "10e":
		return Fig10e(cfg)
	case "10f":
		return Fig10f(cfg)
	case "11a":
		return Fig11a(cfg)
	case "11b":
		return Fig11b(cfg)
	case "11c":
		return Fig11c(cfg)
	case "12a":
		return Fig12a(cfg)
	case "12b":
		return Fig12b(cfg)
	case "12c":
		return Fig12c(cfg)
	case "12d":
		return Fig12d(cfg)
	case "m1":
		return FigM1(cfg)
	default:
		return Figure{}, fmt.Errorf("experiments: unknown figure %q", id)
	}
}

// IDs lists every regenerable figure: the paper's thirteen plus the
// message-overhead extension m1.
func IDs() []string {
	return []string{"10a", "10b", "10c", "10d", "10e", "10f",
		"11a", "11b", "11c", "12a", "12b", "12c", "12d", "m1"}
}
