package experiments

import (
	"math"
	"sync"

	"repro/internal/adhoc"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// FigM1 is an extension experiment (not in the paper, addressing its
// design goal 3: "minimize the overhead of recoding"): protocol messages
// exchanged per join event by the distributed Minim and CP protocols, as
// a function of network size N. Both protocols are local — the message
// count per event tracks neighborhood size (node density), not N, which
// is exactly what the figure demonstrates: on the paper's fixed 100x100
// arena the curves grow linearly with N (density grows), while on an
// arena scaled to keep density constant they stay flat.
func FigM1(cfg Config) (Figure, error) {
	xs := []float64{20, 40, 60, 80, 100}
	type cell struct {
		fixed, scaled map[string]*stats.Accumulator
		mu            sync.Mutex
	}
	cells := make([]*cell, len(xs))
	for i := range cells {
		cells[i] = &cell{
			fixed:  map[string]*stats.Accumulator{"minim": {}, "cp": {}},
			scaled: map[string]*stats.Accumulator{"minim": {}, "cp": {}},
		}
	}

	master := xrand.New(cfg.Seed)
	seeds := make([][]uint64, len(xs))
	for i := range xs {
		seeds[i] = make([]uint64, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			seeds[i][r] = master.Uint64()
		}
	}

	type job struct{ xi, run int }
	jobs := make(chan job)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				n := int(xs[j.xi])
				for _, mode := range []string{"fixed", "scaled"} {
					arena := 100.0
					if mode == "scaled" {
						// Keep density equal to N=100 on 100x100.
						arena = 100.0 * math.Sqrt(float64(n)/100.0)
					}
					for _, proto := range []string{"minim", "cp"} {
						msgs, err := messagesPerJoin(seeds[j.xi][j.run], n, arena, proto)
						if err != nil {
							select {
							case errCh <- err:
							default:
							}
							continue
						}
						cells[j.xi].mu.Lock()
						if mode == "fixed" {
							cells[j.xi].fixed[proto].Add(msgs)
						} else {
							cells[j.xi].scaled[proto].Add(msgs)
						}
						cells[j.xi].mu.Unlock()
					}
				}
			}
		}()
	}
	for xi := range xs {
		for r := 0; r < cfg.Runs; r++ {
			jobs <- job{xi, r}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return Figure{}, err
	default:
	}

	fig := Figure{
		ID:     "m1",
		Title:  "Extension: protocol messages per join vs N",
		XLabel: "Number of Stations N",
		YLabel: "Messages per join event",
	}
	for _, variant := range []struct {
		label string
		pick  func(*cell) map[string]*stats.Accumulator
		proto string
	}{
		{"Minim", func(c *cell) map[string]*stats.Accumulator { return c.fixed }, "minim"},
		{"CP", func(c *cell) map[string]*stats.Accumulator { return c.fixed }, "cp"},
		{"Minim-constdensity", func(c *cell) map[string]*stats.Accumulator { return c.scaled }, "minim"},
		{"CP-constdensity", func(c *cell) map[string]*stats.Accumulator { return c.scaled }, "cp"},
	} {
		s := Series{Label: variant.label, X: append([]float64(nil), xs...)}
		for xi := range xs {
			sum := variant.pick(cells[xi])[variant.proto].Summary()
			s.Y = append(s.Y, sum.Mean)
			s.Err = append(s.Err, sum.CI95())
			s.Raw = append(s.Raw, sum)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// messagesPerJoin builds an N-node base network, then measures the
// messages one distributed join exchanges under the given protocol.
func messagesPerJoin(seed uint64, n int, arena float64, proto string) (float64, error) {
	rng := xrand.New(seed)
	st, err := sim.NewStrategy(sim.Minim)
	if err != nil {
		return 0, err
	}
	p := workload.Defaults()
	p.N = n
	p.ArenaW, p.ArenaH = arena, arena
	sess := sim.NewSession(st, false)
	if err := sess.Apply(workload.JoinScript(seed, p)); err != nil {
		return 0, err
	}

	rt := dist.NewRuntime(rng.Uint64(), st.Network(), st.Assignment())
	joiner := graph.NodeID(n + 1)
	cfg := adhoc.Config{
		Pos:   geom.Point{X: rng.Uniform(0, arena), Y: rng.Uniform(0, arena)},
		Range: rng.Uniform(p.MinR, p.MaxR),
	}
	if err := rt.StartJoin(joiner, cfg, proto); err != nil {
		return 0, err
	}
	if err := rt.Engine.Run(1_000_000); err != nil {
		return 0, err
	}
	return float64(rt.Engine.Delivered), nil
}
