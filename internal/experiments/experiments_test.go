package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps tests fast: 3 runs per point, serial determinism not
// required (aggregation is order-independent means over runs).
func smallCfg() Config {
	return Config{Runs: 3, Seed: 99, Workers: 4}
}

func seriesByLabel(fig Figure, label string) Series {
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	return Series{}
}

func TestFig10aShape(t *testing.T) {
	fig, err := Fig10a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "10a" || len(fig.Series) != 3 {
		t.Fatalf("figure = %+v", fig)
	}
	minim := seriesByLabel(fig, "Minim")
	cp := seriesByLabel(fig, "CP")
	bbbS := seriesByLabel(fig, "BBB")
	if len(minim.X) != 9 {
		t.Fatalf("x axis = %v", minim.X)
	}
	// Paper shape: BBB <= Minim <= CP (within noise) on max color; check
	// the aggregate over the sweep rather than pointwise.
	var sumM, sumC, sumB float64
	for i := range minim.Y {
		sumM += minim.Y[i]
		sumC += cp.Y[i]
		sumB += bbbS.Y[i]
	}
	if sumB > sumM {
		t.Fatalf("BBB aggregate max color %.1f > Minim %.1f", sumB, sumM)
	}
	if sumM > sumC+2 { // Minim may tie CP pointwise; aggregate must not exceed
		t.Fatalf("Minim aggregate max color %.1f > CP %.1f", sumM, sumC)
	}
	// Color need grows with N.
	if minim.Y[len(minim.Y)-1] <= minim.Y[0] {
		t.Fatalf("max color did not grow with N: %v", minim.Y)
	}
}

func TestFig10bcShape(t *testing.T) {
	cfg := smallCfg()
	fb, err := Fig10b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := Fig10c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Series) != 2 {
		t.Fatalf("10c series = %d", len(fc.Series))
	}
	minim := seriesByLabel(fb, "Minim")
	cp := seriesByLabel(fb, "CP")
	bbbS := seriesByLabel(fb, "BBB")
	for i := range minim.X {
		if bbbS.Y[i] < cp.Y[i] {
			t.Fatalf("x=%g: BBB recodings %.1f < CP %.1f", minim.X[i], bbbS.Y[i], cp.Y[i])
		}
	}
	var sumM, sumC float64
	for i := range minim.Y {
		sumM += minim.Y[i]
		sumC += cp.Y[i]
	}
	if sumM > sumC {
		t.Fatalf("Minim aggregate recodings %.1f > CP %.1f", sumM, sumC)
	}
	// Recodings are at least N (every joiner gets a first code).
	for i, x := range minim.X {
		if minim.Y[i] < x {
			t.Fatalf("N=%g: Minim recodings %.1f < N", x, minim.Y[i])
		}
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := smallCfg()
	fb, err := Fig11b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minim := seriesByLabel(fb, "Minim")
	cp := seriesByLabel(fb, "CP")
	bbbS := seriesByLabel(fb, "BBB")
	// raisefactor = 1 is a no-op: zero deltas for the local strategies.
	if minim.Y[0] != 0 || cp.Y[0] != 0 {
		t.Fatalf("raisefactor=1 deltas: Minim %.1f CP %.1f", minim.Y[0], cp.Y[0])
	}
	// The paper's headline: Minim recodes far less than CP and BBB.
	var sumM, sumC, sumB float64
	for i := 1; i < len(minim.Y); i++ {
		sumM += minim.Y[i]
		sumC += cp.Y[i]
		sumB += bbbS.Y[i]
	}
	if sumM >= sumC {
		t.Fatalf("Minim Δrecodings %.1f >= CP %.1f", sumM, sumC)
	}
	if sumC >= sumB {
		t.Fatalf("CP Δrecodings %.1f >= BBB %.1f", sumC, sumB)
	}
}

func TestFig12Shape(t *testing.T) {
	cfg := smallCfg()
	fa, err := Fig12a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa.Series) != 2 {
		t.Fatalf("12a series = %d", len(fa.Series))
	}
	minim := seriesByLabel(fa, "Minim")
	cp := seriesByLabel(fa, "CP")
	// maxdisp = 0: nobody moves anywhere, Minim recodes nothing. (CP may
	// re-pick colors for the mover but lands on the same one: also 0.)
	if minim.Y[0] != 0 {
		t.Fatalf("maxdisp=0 Minim Δ = %.1f", minim.Y[0])
	}
	var sumM, sumC float64
	for i := range minim.Y {
		sumM += minim.Y[i]
		sumC += cp.Y[i]
	}
	if sumM >= sumC {
		t.Fatalf("Minim Δrecodings %.1f >= CP %.1f over maxdisp sweep", sumM, sumC)
	}

	fcFig, err := Fig12c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m12c := seriesByLabel(fcFig, "Minim")
	c12c := seriesByLabel(fcFig, "CP")
	// More rounds, more recodings (monotone in aggregate: compare round 1
	// vs round 10).
	if m12c.Y[len(m12c.Y)-1] <= m12c.Y[0] {
		t.Fatalf("Minim Δrecodings not growing with rounds: %v", m12c.Y)
	}
	if c12c.Y[len(c12c.Y)-1] <= c12c.Y[0] {
		t.Fatalf("CP Δrecodings not growing with rounds: %v", c12c.Y)
	}
}

func TestByIDAndIDs(t *testing.T) {
	cfg := Config{Runs: 1, Seed: 3, Workers: 2}
	for _, id := range IDs() {
		fig, err := ByID(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID != id {
			t.Fatalf("ByID(%q).ID = %q", id, fig.ID)
		}
		if len(fig.Series) == 0 || len(fig.Series[0].X) == 0 {
			t.Fatalf("%s: empty figure", id)
		}
	}
	if _, err := ByID("99z", cfg); err == nil {
		t.Fatal("unknown id did not error")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := Fig10a(Config{Runs: 2, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig10a(Config{Runs: 2, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for i := range a.Series[si].Y {
			if a.Series[si].Y[i] != b.Series[si].Y[i] {
				t.Fatalf("series %d point %d: %.3f vs %.3f",
					si, i, a.Series[si].Y[i], b.Series[si].Y[i])
			}
		}
	}
}

func TestRender(t *testing.T) {
	fig, err := Fig12a(Config{Runs: 1, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 12a", "Minim", "CP", "maxdisp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// One row per x value plus header, separator, footer.
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Fatalf("render too short (%d lines):\n%s", lines, out)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Runs != 100 {
		t.Fatalf("default runs = %d, want the paper's 100", cfg.Runs)
	}
	if cfg.workers() < 1 {
		t.Fatal("workers")
	}
}
