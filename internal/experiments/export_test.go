package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID: "t1", Title: "test figure", XLabel: "N", YLabel: "metric",
		Series: []Series{
			{Label: "Minim", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30.5}, Err: []float64{0.1, 0.2, 0.3}},
			{Label: "CP", X: []float64{1, 2, 3}, Y: []float64{11, 22, 33}, Err: []float64{0.4, 0.5, 0.6}},
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	fig := sampleFigure()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 2 {
		t.Fatalf("series = %d", len(got.Series))
	}
	for si, s := range got.Series {
		want := fig.Series[si]
		if s.Label != want.Label {
			t.Fatalf("label %q != %q", s.Label, want.Label)
		}
		for i := range want.X {
			if s.X[i] != want.X[i] || s.Y[i] != want.Y[i] || s.Err[i] != want.Err[i] {
				t.Fatalf("series %d point %d mismatch", si, i)
			}
		}
	}
}

func TestCSVHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if first != "x,Minim,Minim_ci95,CP,CP_ci95" {
		t.Fatalf("header = %q", first)
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                              // empty
		"a,b\n1,2\n",                    // bad header
		"x,Minim\n1,2\n",                // missing CI column
		"x,Minim,Nope_ci95\n1,2,3\n",    // mismatched CI label
		"x,Minim,Minim_ci95\nfoo,2,3\n", // non-numeric x
		"x,Minim,Minim_ci95\n1,bar,3\n", // non-numeric y
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("malformed CSV accepted: %q", c)
		}
	}
}

func TestWriteGnuplot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGnuplot(&buf, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"set title \"test figure\"",
		"set xlabel \"N\"",
		"$data0 << EOD",
		"$data1 << EOD",
		"yerrorlines",
		"title \"Minim\"",
		"title \"CP\"",
		"1 10 0.1",
		"3 33 0.6",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("gnuplot output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVRealFigure(t *testing.T) {
	fig, err := Fig12a(Config{Runs: 1, Seed: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != len(fig.Series) {
		t.Fatalf("series %d != %d", len(got.Series), len(fig.Series))
	}
	if len(got.Series[0].X) != len(fig.Series[0].X) {
		t.Fatalf("points %d != %d", len(got.Series[0].X), len(fig.Series[0].X))
	}
}
