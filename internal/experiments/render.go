package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a figure as an aligned text table: one row per x value,
// one column per strategy, mean ± 95% CI. This is the textual equivalent
// of the paper's plots.
func Render(w io.Writer, fig Figure) error {
	if _, err := fmt.Fprintf(w, "Figure %s — %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	header := []string{fig.XLabel}
	for _, s := range fig.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	if len(fig.Series) > 0 {
		for i, x := range fig.Series[0].X {
			row := []string{trimFloat(x)}
			for _, s := range fig.Series {
				row = append(row, fmt.Sprintf("%.2f ±%.2f", s.Y[i], s.Err[i]))
			}
			rows = append(rows, row)
		}
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		cells := make([]string, len(row))
		for c, cell := range row {
			cells[c] = pad(cell, widths[c])
		}
		if _, err := fmt.Fprintln(w, "  "+strings.Join(cells, "  ")); err != nil {
			return err
		}
		if ri == 0 {
			total := 2
			for _, wd := range widths {
				total += wd + 2
			}
			if _, err := fmt.Fprintln(w, "  "+strings.Repeat("-", total-2)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "  (%s: mean ± 95%% CI over runs)\n", fig.YLabel)
	return err
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.1f", x)
	return strings.TrimSuffix(s, ".0")
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
