package experiments

import "testing"

func TestFigM1Shape(t *testing.T) {
	fig, err := FigM1(Config{Runs: 4, Seed: 15, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "m1" || len(fig.Series) != 4 {
		t.Fatalf("figure = %+v", fig)
	}
	get := func(label string) Series {
		for _, s := range fig.Series {
			if s.Label == label {
				return s
			}
		}
		t.Fatalf("series %q missing", label)
		return Series{}
	}
	minimFixed := get("Minim")
	minimConst := get("Minim-constdensity")
	// Messages are positive wherever the joiner lands near others; at
	// least the largest-N point must show traffic.
	last := len(minimFixed.Y) - 1
	if minimFixed.Y[last] <= 0 {
		t.Fatalf("no messages at N=%g: %v", minimFixed.X[last], minimFixed.Y)
	}
	// Locality: on the fixed arena, messages grow with N (density). At
	// constant density they stay within a factor ~2 of the smallest-N
	// point instead of growing ~5x like density does.
	if minimFixed.Y[last] <= minimFixed.Y[0] {
		t.Fatalf("fixed-arena messages did not grow with N: %v", minimFixed.Y)
	}
	growthFixed := minimFixed.Y[last] / max(minimFixed.Y[0], 1)
	growthConst := minimConst.Y[last] / max(minimConst.Y[0], 1)
	if growthConst >= growthFixed {
		t.Fatalf("constant-density growth %.2f >= fixed-arena growth %.2f — protocol not local?",
			growthConst, growthFixed)
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestFigM1ViaByID(t *testing.T) {
	fig, err := ByID("m1", Config{Runs: 1, Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "m1" {
		t.Fatalf("ID = %q", fig.ID)
	}
}
