// Package coloring implements the graph-coloring heuristics the paper's
// centralized baseline rests on: sequential greedy coloring over a given
// vertex order, the DSATUR heuristic of Brelaz [9], and smallest-last
// ordering. Colors are the positive integers of package toca; the input
// is an undirected adjacency map as produced by toca.ConflictGraph.
package coloring

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/toca"
)

// Adjacency is an undirected graph given as sorted neighbor lists.
type Adjacency map[graph.NodeID][]graph.NodeID

// nodesOf returns the vertex set ascending.
func nodesOf(adj Adjacency) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(adj))
	for id := range adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Greedy colors vertices in the given order, assigning each the lowest
// positive color unused by its already-colored neighbors. Vertices absent
// from order are left uncolored.
func Greedy(adj Adjacency, order []graph.NodeID) toca.Assignment {
	a := make(toca.Assignment, len(adj))
	used := toca.NewColorSet()
	for _, u := range order {
		used.Clear()
		for _, v := range adj[u] {
			used.Add(a[v])
		}
		a[u] = used.LowestFree()
	}
	return a
}

// IdentityOrder returns the vertices in ascending ID order.
func IdentityOrder(adj Adjacency) []graph.NodeID { return nodesOf(adj) }

// LargestFirstOrder returns vertices by decreasing degree (Welsh-Powell),
// ties broken by ascending ID.
func LargestFirstOrder(adj Adjacency) []graph.NodeID {
	order := nodesOf(adj)
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := len(adj[order[i]]), len(adj[order[j]])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}

// SmallestLastOrder returns the smallest-last ordering: repeatedly remove
// a minimum-degree vertex; the removal sequence reversed is the coloring
// order. Greedy coloring over this order uses at most degeneracy+1
// colors.
func SmallestLastOrder(adj Adjacency) []graph.NodeID {
	n := len(adj)
	deg := make(map[graph.NodeID]int, n)
	removed := make(map[graph.NodeID]bool, n)
	for id, nbrs := range adj {
		deg[id] = len(nbrs)
	}
	ids := nodesOf(adj)
	order := make([]graph.NodeID, n)
	for i := n - 1; i >= 0; i-- {
		// Pick the minimum-degree unremoved vertex, lowest ID on ties.
		var pick graph.NodeID
		best := -1
		for _, id := range ids {
			if removed[id] {
				continue
			}
			if best == -1 || deg[id] < best || (deg[id] == best && id < pick) {
				best = deg[id]
				pick = id
			}
		}
		removed[pick] = true
		order[i] = pick
		for _, v := range adj[pick] {
			if !removed[v] {
				deg[v]--
			}
		}
	}
	return order
}

// DSATUR colors the graph with the Brelaz heuristic: repeatedly color the
// uncolored vertex of maximum saturation (number of distinct neighbor
// colors), breaking ties by higher degree then lower ID, with the lowest
// available color.
func DSATUR(adj Adjacency) toca.Assignment {
	n := len(adj)
	a := make(toca.Assignment, n)
	satSets := make(map[graph.NodeID]toca.ColorSet, n)
	ids := nodesOf(adj)
	for _, id := range ids {
		satSets[id] = toca.NewColorSet()
	}
	for done := 0; done < n; done++ {
		var pick graph.NodeID
		bestSat, bestDeg := -1, -1
		for _, id := range ids {
			if a[id] != toca.None {
				continue
			}
			sat, deg := satSets[id].Len(), len(adj[id])
			if sat > bestSat || (sat == bestSat && deg > bestDeg) {
				bestSat, bestDeg, pick = sat, deg, id
			}
		}
		c := satSets[pick].LowestFree()
		a[pick] = c
		for _, v := range adj[pick] {
			if a[v] == toca.None {
				satSets[v].Add(c)
			}
		}
	}
	return a
}

// Proper reports whether a is a proper coloring of adj: every colored
// vertex differs from all of its colored neighbors, and every vertex of
// adj is colored.
func Proper(adj Adjacency, a toca.Assignment) bool {
	for u, nbrs := range adj {
		if a[u] == toca.None {
			return false
		}
		for _, v := range nbrs {
			if a[u] == a[v] {
				return false
			}
		}
	}
	return true
}

// CountColors returns the number of distinct colors used by a.
func CountColors(a toca.Assignment) int {
	seen := make(map[toca.Color]struct{})
	for _, c := range a {
		if c != toca.None {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}
