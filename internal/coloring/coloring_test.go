package coloring

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/toca"
	"repro/internal/xrand"
)

// clique returns the complete undirected graph on n vertices.
func clique(n int) Adjacency {
	adj := make(Adjacency, n)
	for i := 0; i < n; i++ {
		adj[graph.NodeID(i)] = nil
		for j := 0; j < n; j++ {
			if i != j {
				adj[graph.NodeID(i)] = append(adj[graph.NodeID(i)], graph.NodeID(j))
			}
		}
	}
	return adj
}

// cycle returns the undirected cycle on n vertices.
func cycle(n int) Adjacency {
	adj := make(Adjacency, n)
	for i := 0; i < n; i++ {
		u := graph.NodeID(i)
		adj[u] = []graph.NodeID{graph.NodeID((i + 1) % n), graph.NodeID((i + n - 1) % n)}
	}
	return adj
}

// completeBipartite returns K_{a,b}: vertices 0..a-1 vs a..a+b-1.
func completeBipartite(a, b int) Adjacency {
	adj := make(Adjacency)
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			adj[graph.NodeID(i)] = append(adj[graph.NodeID(i)], graph.NodeID(j))
			adj[graph.NodeID(j)] = append(adj[graph.NodeID(j)], graph.NodeID(i))
		}
	}
	return adj
}

// randomAdjacency builds a random undirected graph.
func randomAdjacency(seed uint64, n int, p float64) Adjacency {
	rng := xrand.New(seed)
	adj := make(Adjacency, n)
	for i := 0; i < n; i++ {
		adj[graph.NodeID(i)] = nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				u, v := graph.NodeID(i), graph.NodeID(j)
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
			}
		}
	}
	return adj
}

func TestGreedyProperOnRandom(t *testing.T) {
	f := func(seed uint64) bool {
		adj := randomAdjacency(seed, 20, 0.3)
		a := Greedy(adj, IdentityOrder(adj))
		return Proper(adj, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDSATURProperOnRandom(t *testing.T) {
	f := func(seed uint64) bool {
		adj := randomAdjacency(seed, 20, 0.3)
		return Proper(adj, DSATUR(adj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCliqueNeedsNColors(t *testing.T) {
	for n := 1; n <= 8; n++ {
		adj := clique(n)
		for name, a := range map[string]toca.Assignment{
			"greedy": Greedy(adj, IdentityOrder(adj)),
			"dsatur": DSATUR(adj),
		} {
			if !Proper(adj, a) {
				t.Fatalf("%s: improper on K_%d", name, n)
			}
			if got := CountColors(a); got != n {
				t.Fatalf("%s: K_%d used %d colors", name, n, got)
			}
		}
	}
}

func TestEvenCycleTwoColors(t *testing.T) {
	adj := cycle(10)
	a := DSATUR(adj)
	if !Proper(adj, a) || CountColors(a) != 2 {
		t.Fatalf("even cycle: %d colors, proper=%v", CountColors(a), Proper(adj, a))
	}
}

func TestOddCycleThreeColors(t *testing.T) {
	adj := cycle(9)
	a := DSATUR(adj)
	if !Proper(adj, a) || CountColors(a) != 3 {
		t.Fatalf("odd cycle: %d colors, proper=%v", CountColors(a), Proper(adj, a))
	}
}

// TestDSATURBipartiteExact: DSATUR is exact on bipartite graphs (a known
// property of the heuristic).
func TestDSATURBipartiteExact(t *testing.T) {
	for _, dims := range [][2]int{{3, 4}, {5, 5}, {1, 7}, {2, 2}} {
		adj := completeBipartite(dims[0], dims[1])
		a := DSATUR(adj)
		if !Proper(adj, a) || CountColors(a) != 2 {
			t.Fatalf("K_%d,%d: %d colors", dims[0], dims[1], CountColors(a))
		}
	}
}

func TestSmallestLastOrderIsPermutation(t *testing.T) {
	adj := randomAdjacency(17, 25, 0.25)
	order := SmallestLastOrder(adj)
	if len(order) != len(adj) {
		t.Fatalf("order length %d, want %d", len(order), len(adj))
	}
	seen := make(map[graph.NodeID]bool)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate %d in order", id)
		}
		seen[id] = true
	}
	a := Greedy(adj, order)
	if !Proper(adj, a) {
		t.Fatal("greedy over smallest-last order improper")
	}
}

func TestLargestFirstOrder(t *testing.T) {
	// Star: center has max degree and must come first.
	adj := completeBipartite(1, 6)
	order := LargestFirstOrder(adj)
	if order[0] != 0 {
		t.Fatalf("star center not first: %v", order)
	}
	a := Greedy(adj, order)
	if !Proper(adj, a) || CountColors(a) != 2 {
		t.Fatalf("star: %d colors", CountColors(a))
	}
}

// TestDSATURNotWorseThanIdentityGreedy on random instances — DSATUR is a
// strictly smarter heuristic; allow equality but catch regressions where
// it would be systematically worse.
func TestDSATURNotMuchWorseThanGreedy(t *testing.T) {
	rng := xrand.New(555)
	worse := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		adj := randomAdjacency(rng.Uint64(), 30, 0.3)
		d := CountColors(DSATUR(adj))
		g := CountColors(Greedy(adj, IdentityOrder(adj)))
		if d > g {
			worse++
		}
	}
	if worse > trials/4 {
		t.Fatalf("DSATUR worse than identity greedy in %d/%d trials", worse, trials)
	}
}

func TestProperRejects(t *testing.T) {
	adj := cycle(4)
	bad := toca.Assignment{0: 1, 1: 1, 2: 2, 3: 2}
	if Proper(adj, bad) {
		t.Fatal("improper coloring accepted")
	}
	missing := toca.Assignment{0: 1, 1: 2, 2: 1}
	if Proper(adj, missing) {
		t.Fatal("partial coloring accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	adj := Adjacency{}
	if a := DSATUR(adj); len(a) != 0 {
		t.Fatalf("DSATUR on empty = %v", a)
	}
	if a := Greedy(adj, nil); len(a) != 0 {
		t.Fatalf("Greedy on empty = %v", a)
	}
	if CountColors(nil) != 0 {
		t.Fatal("CountColors(nil) != 0")
	}
}

func TestIsolatedVertices(t *testing.T) {
	adj := Adjacency{1: nil, 2: nil, 3: nil}
	a := DSATUR(adj)
	if !Proper(adj, a) || CountColors(a) != 1 {
		t.Fatalf("isolated vertices: %v", a)
	}
}

// TestGreedyColorBound: greedy never uses more than maxdegree+1 colors.
func TestGreedyColorBound(t *testing.T) {
	f := func(seed uint64) bool {
		adj := randomAdjacency(seed, 25, 0.35)
		maxDeg := 0
		for _, nbrs := range adj {
			if len(nbrs) > maxDeg {
				maxDeg = len(nbrs)
			}
		}
		for _, order := range [][]graph.NodeID{
			IdentityOrder(adj), LargestFirstOrder(adj), SmallestLastOrder(adj),
		} {
			a := Greedy(adj, order)
			if int(a.MaxColor()) > maxDeg+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
