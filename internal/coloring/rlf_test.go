package coloring

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/toca"
	"repro/internal/xrand"
)

func TestRLFProperOnRandom(t *testing.T) {
	f := func(seed uint64) bool {
		adj := randomAdjacency(seed, 25, 0.3)
		return Proper(adj, RLF(adj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRLFKnownStructures(t *testing.T) {
	for n := 1; n <= 7; n++ {
		adj := clique(n)
		a := RLF(adj)
		if !Proper(adj, a) || CountColors(a) != n {
			t.Fatalf("K_%d: %d colors, proper=%v", n, CountColors(a), Proper(adj, a))
		}
	}
	even := cycle(8)
	if a := RLF(even); CountColors(a) != 2 || !Proper(even, a) {
		t.Fatalf("even cycle: %d colors", CountColors(RLF(even)))
	}
	odd := cycle(9)
	if a := RLF(odd); CountColors(a) != 3 || !Proper(odd, a) {
		t.Fatalf("odd cycle: %d colors", CountColors(RLF(odd)))
	}
	bip := completeBipartite(4, 6)
	if a := RLF(bip); CountColors(a) != 2 || !Proper(bip, a) {
		t.Fatalf("K_4,6: %d colors", CountColors(RLF(bip)))
	}
}

func TestRLFEmptyAndIsolated(t *testing.T) {
	if a := RLF(Adjacency{}); len(a) != 0 {
		t.Fatalf("empty = %v", a)
	}
	iso := Adjacency{1: nil, 2: nil}
	if a := RLF(iso); CountColors(a) != 1 || !Proper(iso, a) {
		t.Fatalf("isolated = %v", RLF(iso))
	}
}

// TestRLFCompetitiveWithDSATUR: on random instances RLF stays within one
// color of DSATUR on average (usually matching or beating it on dense
// graphs).
func TestRLFCompetitiveWithDSATUR(t *testing.T) {
	rng := xrand.New(88)
	totalRLF, totalDSATUR := 0, 0
	const trials = 30
	for i := 0; i < trials; i++ {
		adj := randomAdjacency(rng.Uint64(), 30, 0.4)
		totalRLF += CountColors(RLF(adj))
		totalDSATUR += CountColors(DSATUR(adj))
	}
	if totalRLF > totalDSATUR+trials {
		t.Fatalf("RLF total %d vs DSATUR %d — more than one extra color per instance",
			totalRLF, totalDSATUR)
	}
}

func TestOrderByColorClassSize(t *testing.T) {
	a := toca.Assignment{1: 1, 2: 1, 3: 1, 4: 2, 5: 3, 6: 3}
	order := OrderByColorClassSize(a)
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// Class 1 (size 3) first, then class 3 (size 2), then class 2.
	classOf := func(id graph.NodeID) toca.Color { return a[id] }
	if classOf(order[0]) != 1 || classOf(order[3]) != 3 || classOf(order[5]) != 2 {
		t.Fatalf("order = %v", order)
	}
}
