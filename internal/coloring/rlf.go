package coloring

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/toca"
)

// RLF colors the graph with the Recursive Largest First heuristic
// (Leighton): colors are built one class at a time. Each class starts
// from the uncolored vertex with the most uncolored neighbors, then
// greedily absorbs the candidate with the most neighbors *outside* the
// remaining candidate set (maximizing how much of the class's
// "forbidden zone" is reused), until no candidate remains.
//
// RLF typically uses slightly fewer colors than DSATUR on dense graphs
// at a higher constant cost; it is offered as an alternative heuristic
// for the BBB baseline's recoloring step.
func RLF(adj Adjacency) toca.Assignment {
	n := len(adj)
	a := make(toca.Assignment, n)
	uncolored := make(map[graph.NodeID]struct{}, n)
	for id := range adj {
		uncolored[id] = struct{}{}
	}

	neighbors := func(id graph.NodeID, in map[graph.NodeID]struct{}) int {
		count := 0
		for _, v := range adj[id] {
			if _, ok := in[v]; ok {
				count++
			}
		}
		return count
	}

	// Deterministic candidate iteration order.
	sortedIDs := nodesOf(adj)

	for c := toca.Color(1); len(uncolored) > 0; c++ {
		// Candidates for this class: all uncolored vertices.
		candidates := make(map[graph.NodeID]struct{}, len(uncolored))
		for id := range uncolored {
			candidates[id] = struct{}{}
		}
		// Seed: candidate with most uncolored neighbors.
		var seed graph.NodeID
		bestDeg := -1
		for _, id := range sortedIDs {
			if _, ok := candidates[id]; !ok {
				continue
			}
			if d := neighbors(id, uncolored); d > bestDeg {
				bestDeg = d
				seed = id
			}
		}
		class := []graph.NodeID{seed}
		removeWithNeighbors(candidates, adj, seed)

		// Absorb: candidate maximizing neighbors outside the candidate
		// set (i.e., already excluded by the class), ties by fewest
		// neighbors inside, then lowest ID.
		for len(candidates) > 0 {
			var pick graph.NodeID
			bestOut, bestIn := -1, 1<<30
			for _, id := range sortedIDs {
				if _, ok := candidates[id]; !ok {
					continue
				}
				out := len(adj[id]) - neighbors(id, candidates)
				in := neighbors(id, candidates)
				if out > bestOut || (out == bestOut && in < bestIn) {
					bestOut, bestIn, pick = out, in, id
				}
			}
			class = append(class, pick)
			removeWithNeighbors(candidates, adj, pick)
		}
		for _, id := range class {
			a[id] = c
			delete(uncolored, id)
		}
	}
	return a
}

// removeWithNeighbors deletes id and all its neighbors from set.
func removeWithNeighbors(set map[graph.NodeID]struct{}, adj Adjacency, id graph.NodeID) {
	delete(set, id)
	for _, v := range adj[id] {
		delete(set, v)
	}
}

// OrderByColorClassSize returns the vertices sorted so that greedy
// recoloring visits large color classes of a first — a utility for
// recolor-stability experiments.
func OrderByColorClassSize(a toca.Assignment) []graph.NodeID {
	counts := a.ColorCounts()
	ids := make([]graph.NodeID, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := counts[a[ids[i]]], counts[a[ids[j]]]
		if ci != cj {
			return ci > cj
		}
		return ids[i] < ids[j]
	})
	return ids
}
