// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate metrics over repeated simulation runs: mean,
// standard deviation, min/max, and normal-approximation confidence
// intervals. Every plotted point in the paper is "the average of the
// metric measured over 100 runs"; Summary is that average plus spread.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval of the mean (1.96 * stderr). Zero for samples of size < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer with a compact mean±ci rendering.
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ±%.3f (n=%d, min=%.3f, max=%.3f)",
		s.Mean, s.CI95(), s.N, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Median returns the median of xs (0 for an empty sample). The input is
// not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Accumulator aggregates observations incrementally (Welford's online
// algorithm), avoiding a second pass and catastrophic cancellation.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Summary snapshots the accumulated statistics.
func (a *Accumulator) Summary() Summary {
	s := Summary{N: a.n, Mean: a.mean, Min: a.min, Max: a.max}
	if a.n > 1 {
		s.Stddev = math.Sqrt(a.m2 / float64(a.n-1))
	}
	return s
}
