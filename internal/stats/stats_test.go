package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almost(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %g", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Fatalf("empty = %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Stddev != 0 || s.CI95() != 0 {
		t.Fatalf("single = %+v", s)
	}
	if s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single min/max = %+v", s)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := xrand.New(1)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = rng.Float64()
	}
	for i := range large {
		large[i] = rng.Float64()
	}
	if Summarize(small).CI95() <= Summarize(large).CI95() {
		t.Fatal("CI did not shrink with sample size")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatal("median mutated input")
	}
}

// TestAccumulatorMatchesBatch: Welford's online results equal the batch
// computation on random samples.
func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		var acc Accumulator
		for i := range xs {
			xs[i] = rng.Uniform(-100, 100)
			acc.Add(xs[i])
		}
		batch := Summarize(xs)
		online := acc.Summary()
		return online.N == batch.N &&
			almost(online.Mean, batch.Mean, 1e-9) &&
			almost(online.Stddev, batch.Stddev, 1e-9) &&
			online.Min == batch.Min && online.Max == batch.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	s := acc.Summary()
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Fatalf("empty accumulator = %+v", s)
	}
	if acc.N() != 0 {
		t.Fatal("N")
	}
}

func TestStringRendering(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "2.000") || !strings.Contains(str, "n=3") {
		t.Fatalf("String = %q", str)
	}
}
