// Package graph implements the dynamic directed graph underlying the
// ad-hoc network model: nodes are mobiles, and an edge u -> v means v is
// within u's transmission range (v hears u).
//
// The structure supports incremental node and edge updates, queries over
// in- and out-neighborhoods, and BFS hop distances, all of which the
// recoding strategies and the distributed runtime need. Iteration-order
// determinism is provided by sorted-slice accessors so that simulations
// are bit-reproducible.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (mobile) in the network.
type NodeID int

// nodeSet is a set of node IDs.
type nodeSet map[NodeID]struct{}

func (s nodeSet) sorted() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Digraph is a mutable directed graph. The zero value is not usable;
// construct with New.
type Digraph struct {
	out map[NodeID]nodeSet
	in  map[NodeID]nodeSet
	m   int // edge count
}

// New returns an empty directed graph.
func New() *Digraph {
	return &Digraph{
		out: make(map[NodeID]nodeSet),
		in:  make(map[NodeID]nodeSet),
	}
}

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Digraph) AddNode(id NodeID) {
	if _, ok := g.out[id]; ok {
		return
	}
	g.out[id] = make(nodeSet)
	g.in[id] = make(nodeSet)
}

// RemoveNode deletes a node and all incident edges. Removing a missing
// node is a no-op.
func (g *Digraph) RemoveNode(id NodeID) {
	if _, ok := g.out[id]; !ok {
		return
	}
	for v := range g.out[id] {
		delete(g.in[v], id)
		g.m--
	}
	for u := range g.in[id] {
		delete(g.out[u], id)
		g.m--
	}
	delete(g.out, id)
	delete(g.in, id)
}

// HasNode reports whether id is present.
func (g *Digraph) HasNode(id NodeID) bool {
	_, ok := g.out[id]
	return ok
}

// AddEdge inserts the directed edge u -> v. Both endpoints must already
// exist and u must differ from v; violations panic because they indicate
// a bug in the network-maintenance layer, not a runtime condition.
func (g *Digraph) AddEdge(u, v NodeID) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	ou, ok := g.out[u]
	if !ok {
		panic(fmt.Sprintf("graph: AddEdge tail %d not in graph", u))
	}
	if _, ok := g.out[v]; !ok {
		panic(fmt.Sprintf("graph: AddEdge head %d not in graph", v))
	}
	if _, dup := ou[v]; dup {
		return
	}
	ou[v] = struct{}{}
	g.in[v][u] = struct{}{}
	g.m++
}

// RemoveEdge deletes the directed edge u -> v if present.
func (g *Digraph) RemoveEdge(u, v NodeID) {
	if ou, ok := g.out[u]; ok {
		if _, present := ou[v]; present {
			delete(ou, v)
			delete(g.in[v], u)
			g.m--
		}
	}
}

// HasEdge reports whether the directed edge u -> v exists.
func (g *Digraph) HasEdge(u, v NodeID) bool {
	ou, ok := g.out[u]
	if !ok {
		return false
	}
	_, present := ou[v]
	return present
}

// NumNodes returns the number of nodes.
func (g *Digraph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() int { return g.m }

// Nodes returns all node IDs in ascending order.
func (g *Digraph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.out))
	for id := range g.out {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OutNeighbors returns the nodes v with an edge id -> v, ascending.
func (g *Digraph) OutNeighbors(id NodeID) []NodeID {
	return g.out[id].sorted()
}

// InNeighbors returns the nodes u with an edge u -> id, ascending.
func (g *Digraph) InNeighbors(id NodeID) []NodeID {
	return g.in[id].sorted()
}

// OutDegree returns the number of out-edges of id.
func (g *Digraph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of in-edges of id.
func (g *Digraph) InDegree(id NodeID) int { return len(g.in[id]) }

// ForEachOut calls fn for every out-neighbor of id, in unspecified order.
// It is the allocation-free companion of OutNeighbors for hot paths.
func (g *Digraph) ForEachOut(id NodeID, fn func(NodeID)) {
	for v := range g.out[id] {
		fn(v)
	}
}

// ForEachIn calls fn for every in-neighbor of id, in unspecified order.
func (g *Digraph) ForEachIn(id NodeID, fn func(NodeID)) {
	for u := range g.in[id] {
		fn(u)
	}
}

// Edges returns every directed edge as a (tail, head) pair, sorted by
// tail then head. Intended for tests and serialization.
func (g *Digraph) Edges() [][2]NodeID {
	edges := make([][2]NodeID, 0, g.m)
	for _, u := range g.Nodes() {
		for _, v := range g.out[u].sorted() {
			edges = append(edges, [2]NodeID{u, v})
		}
	}
	return edges
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for id := range g.out {
		c.AddNode(id)
	}
	for u, ou := range g.out {
		for v := range ou {
			c.AddEdge(u, v)
		}
	}
	return c
}

// UndirectedNeighbors returns all nodes adjacent to id in either
// direction, ascending and without duplicates. This is the "1-hop
// neighborhood" used by the CP strategy's symmetric view.
func (g *Digraph) UndirectedNeighbors(id NodeID) []NodeID {
	seen := make(nodeSet, len(g.out[id])+len(g.in[id]))
	for v := range g.out[id] {
		seen[v] = struct{}{}
	}
	for u := range g.in[id] {
		seen[u] = struct{}{}
	}
	return seen.sorted()
}

// HopDistances returns BFS hop counts from src over the *undirected*
// version of the graph (communication reachability regardless of edge
// direction). Unreachable nodes are absent from the result. Used by the
// parallel-join safety check (two joins must be >= 5 hops apart).
func (g *Digraph) HopDistances(src NodeID) map[NodeID]int {
	dist := make(map[NodeID]int)
	if !g.HasNode(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		d := dist[u]
		visit := func(v NodeID) {
			if _, ok := dist[v]; !ok {
				dist[v] = d + 1
				queue = append(queue, v)
			}
		}
		for v := range g.out[u] {
			visit(v)
		}
		for v := range g.in[u] {
			visit(v)
		}
	}
	return dist
}

// WithinHops returns all nodes at undirected hop distance <= k from src,
// excluding src itself, in ascending order.
func (g *Digraph) WithinHops(src NodeID, k int) []NodeID {
	dist := g.HopDistances(src)
	out := make([]NodeID, 0, len(dist))
	for id, d := range dist {
		if id != src && d <= k {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxDegree returns the maximum of in- and out-degrees over all nodes
// (the parameter k in the paper's complexity analysis).
func (g *Digraph) MaxDegree() int {
	max := 0
	for id := range g.out {
		if d := len(g.out[id]); d > max {
			max = d
		}
		if d := len(g.in[id]); d > max {
			max = d
		}
	}
	return max
}

// Validate checks internal consistency (in/out mirrors agree, edge count
// matches). It returns an error describing the first inconsistency, or
// nil. Intended for tests.
func (g *Digraph) Validate() error {
	count := 0
	for u, ou := range g.out {
		for v := range ou {
			count++
			if _, ok := g.in[v][u]; !ok {
				return fmt.Errorf("graph: edge %d->%d missing from in-adjacency", u, v)
			}
		}
	}
	if count != g.m {
		return fmt.Errorf("graph: edge count %d != recorded %d", count, g.m)
	}
	for v, iv := range g.in {
		for u := range iv {
			if _, ok := g.out[u][v]; !ok {
				return fmt.Errorf("graph: edge %d->%d missing from out-adjacency", u, v)
			}
		}
	}
	return nil
}
