package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAddRemoveNode(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(2)
	g.AddNode(1) // duplicate no-op
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	if !g.HasNode(1) || !g.HasNode(2) || g.HasNode(3) {
		t.Fatal("HasNode wrong")
	}
	g.RemoveNode(1)
	g.RemoveNode(1) // missing no-op
	if g.NumNodes() != 1 || g.HasNode(1) {
		t.Fatal("RemoveNode failed")
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate no-op
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("directedness broken")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	g.RemoveEdge(1, 2)
	g.RemoveEdge(1, 2) // missing no-op
	if g.HasEdge(1, 2) || g.NumEdges() != 0 {
		t.Fatal("RemoveEdge failed")
	}
}

func TestRemoveNodeRemovesIncidentEdges(t *testing.T) {
	g := New()
	for i := 1; i <= 4; i++ {
		g.AddNode(NodeID(i))
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(4, 2)
	g.RemoveNode(2)
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after removing hub, want 0", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := New()
	g.AddNode(1)
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	g.AddEdge(1, 1)
}

func TestAddEdgeMissingEndpointPanics(t *testing.T) {
	g := New()
	g.AddNode(1)
	defer func() {
		if recover() == nil {
			t.Fatal("missing endpoint did not panic")
		}
	}()
	g.AddEdge(1, 99)
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	for _, id := range []NodeID{5, 3, 9, 1, 7} {
		g.AddNode(id)
	}
	for _, id := range []NodeID{9, 3, 7} {
		g.AddEdge(5, id)
		g.AddEdge(id, 5)
	}
	wantOut := []NodeID{3, 7, 9}
	if got := g.OutNeighbors(5); !reflect.DeepEqual(got, wantOut) {
		t.Fatalf("OutNeighbors = %v, want %v", got, wantOut)
	}
	if got := g.InNeighbors(5); !reflect.DeepEqual(got, wantOut) {
		t.Fatalf("InNeighbors = %v, want %v", got, wantOut)
	}
	if got := g.Nodes(); !reflect.DeepEqual(got, []NodeID{1, 3, 5, 7, 9}) {
		t.Fatalf("Nodes = %v", got)
	}
}

func TestDegrees(t *testing.T) {
	g := New()
	for i := 1; i <= 3; i++ {
		g.AddNode(NodeID(i))
	}
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 1)
	if g.OutDegree(1) != 2 || g.InDegree(1) != 1 {
		t.Fatalf("degrees of 1: out=%d in=%d", g.OutDegree(1), g.InDegree(1))
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestEdgesListing(t *testing.T) {
	g := New()
	for i := 1; i <= 3; i++ {
		g.AddNode(NodeID(i))
	}
	g.AddEdge(2, 1)
	g.AddEdge(1, 3)
	g.AddEdge(1, 2)
	want := [][2]NodeID{{1, 2}, {1, 3}, {2, 1}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(2)
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddNode(3)
	c.AddEdge(2, 1)
	if g.HasNode(3) || g.HasEdge(2, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if !c.HasEdge(1, 2) {
		t.Fatal("clone lost edge")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedNeighbors(t *testing.T) {
	g := New()
	for i := 1; i <= 4; i++ {
		g.AddNode(NodeID(i))
	}
	g.AddEdge(1, 2) // out only
	g.AddEdge(3, 1) // in only
	g.AddEdge(1, 4)
	g.AddEdge(4, 1) // both
	want := []NodeID{2, 3, 4}
	if got := g.UndirectedNeighbors(1); !reflect.DeepEqual(got, want) {
		t.Fatalf("UndirectedNeighbors = %v, want %v", got, want)
	}
}

func TestHopDistancesLine(t *testing.T) {
	// 1 -> 2 -> 3 -> 4 directed line; undirected BFS sees the chain.
	g := New()
	for i := 1; i <= 4; i++ {
		g.AddNode(NodeID(i))
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	d := g.HopDistances(1)
	want := map[NodeID]int{1: 0, 2: 1, 3: 2, 4: 3}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("HopDistances = %v, want %v", d, want)
	}
	// From the far end the chain reverses (undirected reachability).
	d = g.HopDistances(4)
	want = map[NodeID]int{4: 0, 3: 1, 2: 2, 1: 3}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("HopDistances(4) = %v, want %v", d, want)
	}
}

func TestHopDistancesDisconnected(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(2)
	d := g.HopDistances(1)
	if len(d) != 1 || d[1] != 0 {
		t.Fatalf("HopDistances = %v", d)
	}
	if d := g.HopDistances(42); len(d) != 0 {
		t.Fatalf("HopDistances of absent node = %v", d)
	}
}

func TestWithinHops(t *testing.T) {
	g := New()
	for i := 1; i <= 5; i++ {
		g.AddNode(NodeID(i))
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	if got := g.WithinHops(1, 2); !reflect.DeepEqual(got, []NodeID{2, 3}) {
		t.Fatalf("WithinHops(1,2) = %v", got)
	}
	if got := g.WithinHops(1, 10); len(got) != 4 {
		t.Fatalf("WithinHops(1,10) = %v", got)
	}
}

func TestForEachCallbacks(t *testing.T) {
	g := New()
	for i := 1; i <= 3; i++ {
		g.AddNode(NodeID(i))
	}
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 1)
	outs := map[NodeID]bool{}
	g.ForEachOut(1, func(v NodeID) { outs[v] = true })
	if len(outs) != 2 || !outs[2] || !outs[3] {
		t.Fatalf("ForEachOut = %v", outs)
	}
	ins := map[NodeID]bool{}
	g.ForEachIn(1, func(v NodeID) { ins[v] = true })
	if len(ins) != 1 || !ins[2] {
		t.Fatalf("ForEachIn = %v", ins)
	}
}

// TestRandomOpsValidate drives a random operation sequence and checks the
// structure stays internally consistent throughout.
func TestRandomOpsValidate(t *testing.T) {
	rng := xrand.New(202)
	g := New()
	present := []NodeID{}
	for step := 0; step < 3000; step++ {
		switch rng.Intn(5) {
		case 0: // add node
			id := NodeID(rng.Intn(50))
			if !g.HasNode(id) {
				g.AddNode(id)
				present = append(present, id)
			}
		case 1: // remove node
			if len(present) > 0 {
				i := rng.Intn(len(present))
				g.RemoveNode(present[i])
				present = append(present[:i], present[i+1:]...)
			}
		case 2, 3: // add edge
			if len(present) >= 2 {
				u := present[rng.Intn(len(present))]
				v := present[rng.Intn(len(present))]
				if u != v {
					g.AddEdge(u, v)
				}
			}
		case 4: // remove edge
			if len(present) >= 2 {
				u := present[rng.Intn(len(present))]
				v := present[rng.Intn(len(present))]
				g.RemoveEdge(u, v)
			}
		}
		if step%100 == 0 {
			if err := g.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeMirrorProperty: for random graphs, HasEdge(u,v) iff v in
// OutNeighbors(u) iff u in InNeighbors(v).
func TestEdgeMirrorProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := New()
		n := 2 + rng.Intn(12)
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i))
		}
		for e := 0; e < 3*n; e++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				has := g.HasEdge(NodeID(u), NodeID(v))
				inOut := containsNode(g.OutNeighbors(NodeID(u)), NodeID(v))
				inIn := containsNode(g.InNeighbors(NodeID(v)), NodeID(u))
				if has != inOut || has != inIn {
					return false
				}
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func containsNode(s []NodeID, id NodeID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}
