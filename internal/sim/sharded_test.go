package sim

import (
	"reflect"
	"testing"

	"repro/internal/shard"
	"repro/internal/workload"
)

// TestRunPhasesShardedMatchesRunPhases: the sharded entry point yields
// the exact PhaseResults of the single-engine entry point, for all
// three strategies, on a join base followed by a movement phase.
func TestRunPhasesShardedMatchesRunPhases(t *testing.T) {
	p := workload.Defaults()
	p.N = 40
	p.MaxDisp = 30
	p.RoundNo = 2
	base := workload.JoinScript(5, p)
	phase := workload.MoveScript(5, p)

	want, err := RunPhases(AllStrategies, base, phase, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, grid := range []struct{ gx, gy int }{{1, 1}, {2, 2}} {
		cfg := shard.Config{GridX: grid.gx, GridY: grid.gy, ArenaW: p.ArenaW, ArenaH: p.ArenaH}
		got, err := RunPhasesSharded(AllStrategies, base, phase, true, cfg)
		if err != nil {
			t.Fatalf("grid %dx%d: %v", grid.gx, grid.gy, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("grid %dx%d: sharded results %+v, want %+v", grid.gx, grid.gy, got, want)
		}
	}
}
