package sim

import (
	"testing"

	"repro/internal/strategy"
	"repro/internal/toca"
	"repro/internal/workload"
)

func TestNewStrategy(t *testing.T) {
	for _, name := range AllStrategies {
		s, err := NewStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != string(name) {
			t.Fatalf("Name = %q, want %q", s.Name(), name)
		}
	}
	if _, err := NewStrategy("nope"); err == nil {
		t.Fatal("unknown strategy did not error")
	}
}

func TestRunSinglePhase(t *testing.T) {
	p := workload.Defaults()
	p.N = 30
	events := workload.JoinScript(1, p)
	results, err := Run(AllStrategies, events, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Final.Nodes != 30 {
			t.Fatalf("%s: %d nodes", r.Name, r.Final.Nodes)
		}
		if r.Final.TotalRecodings < 30 {
			t.Fatalf("%s: %d recodings < N", r.Name, r.Final.TotalRecodings)
		}
		if r.Final.MaxColor == toca.None {
			t.Fatalf("%s: no colors assigned", r.Name)
		}
		// Single phase: base snapshot equals final.
		if r.DeltaRecodings() != 0 || r.DeltaMaxColor() != 0 {
			t.Fatalf("%s: non-zero deltas on single phase", r.Name)
		}
	}
}

func TestRunPhasesDeltas(t *testing.T) {
	p := workload.Defaults()
	p.N = 30
	p.RaiseFactor = 3
	base := workload.JoinScript(2, p)
	phase := workload.PowerRaiseScript(2, p)
	results, err := RunPhases(AllStrategies, base, phase, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Final.TotalRecodings < r.AfterBase.TotalRecodings {
			t.Fatalf("%s: recodings decreased", r.Name)
		}
		if r.DeltaRecodings() != r.Final.TotalRecodings-r.AfterBase.TotalRecodings {
			t.Fatalf("%s: delta arithmetic", r.Name)
		}
	}
	// The paper's Fig 11 ordering: Minim recodes least in the raise
	// phase, BBB most.
	byName := map[StrategyName]PhaseResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if byName[Minim].DeltaRecodings() > byName[CP].DeltaRecodings() {
		t.Fatalf("Minim Δrecodings %d > CP %d", byName[Minim].DeltaRecodings(), byName[CP].DeltaRecodings())
	}
	if byName[CP].DeltaRecodings() > byName[BBB].DeltaRecodings() {
		t.Fatalf("CP Δrecodings %d > BBB %d", byName[CP].DeltaRecodings(), byName[BBB].DeltaRecodings())
	}
}

func TestIdenticalScriptsAcrossStrategies(t *testing.T) {
	// All strategies must end with identical topology (same events).
	p := workload.Defaults()
	p.N = 25
	events := workload.JoinScript(5, p)
	results, err := Run(AllStrategies, events, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results[1:] {
		if r.Final.Nodes != results[0].Final.Nodes {
			t.Fatalf("topologies diverged: %d vs %d", r.Final.Nodes, results[0].Final.Nodes)
		}
	}
}

func TestSessionErrorPropagates(t *testing.T) {
	s, err := NewStrategy(Minim)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s, false)
	// Leaving an absent node must surface the error.
	if err := sess.Apply([]strategy.Event{strategy.LeaveEvent(99)}); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestRunPhasesUnknownStrategy(t *testing.T) {
	if _, err := RunPhases([]StrategyName{"bogus"}, nil, nil, false); err == nil {
		t.Fatal("unknown strategy did not error")
	}
}
