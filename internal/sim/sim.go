// Package sim drives recoding strategies through event scripts and
// snapshots the paper's two metrics (total recodings, maximum color
// index) at phase boundaries. It is the glue between the workload
// generators and the experiment harness.
package sim

import (
	"fmt"

	"repro/internal/bbb"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/strategy"
	"repro/internal/toca"
)

// Snapshot captures cumulative metrics at a point in a simulation.
type Snapshot struct {
	TotalRecodings int
	MaxColor       toca.Color
	Nodes          int
}

// Session couples a strategy with metric accounting across script phases.
type Session struct {
	runner *strategy.Runner
}

// NewSession wraps s. When validate is set, CA1/CA2 are re-verified after
// every event (slow; meant for tests and the verify tool).
func NewSession(s strategy.Strategy, validate bool) *Session {
	r := strategy.NewRunner(s)
	r.Validate = validate
	return &Session{runner: r}
}

// Strategy returns the wrapped strategy.
func (s *Session) Strategy() strategy.Strategy { return s.runner.S }

// Apply runs one phase of events.
func (s *Session) Apply(events []strategy.Event) error {
	return s.runner.ApplyAll(events)
}

// Snapshot reports the cumulative metrics so far.
func (s *Session) Snapshot() Snapshot {
	return Snapshot{
		TotalRecodings: s.runner.M.TotalRecodings,
		MaxColor:       s.runner.M.MaxColor,
		Nodes:          s.runner.S.Network().Size(),
	}
}

// StrategyName identifies one of the three competing strategies.
type StrategyName string

// The three strategies of the paper's evaluation, plus the strict-move
// CP variant (the literal leave-then-join reading of [3], used by the
// movement ablation).
const (
	Minim    StrategyName = "Minim"
	CP       StrategyName = "CP"
	BBB      StrategyName = "BBB"
	CPStrict StrategyName = "CP-strict"
)

// AllStrategies lists the paper's three competitors in plot order.
var AllStrategies = []StrategyName{Minim, CP, BBB}

// NewStrategy constructs a fresh empty-network instance of the named
// strategy.
func NewStrategy(name StrategyName) (strategy.Strategy, error) {
	switch name {
	case Minim:
		return core.New(), nil
	case CP:
		return cp.New(), nil
	case CPStrict:
		return cp.NewStrict(), nil
	case BBB:
		return bbb.New(), nil
	default:
		return nil, fmt.Errorf("sim: unknown strategy %q", name)
	}
}

// PhaseResult reports the snapshots around a two-phase run.
type PhaseResult struct {
	Name      StrategyName
	AfterBase Snapshot
	Final     Snapshot
}

// DeltaRecodings is the paper's Δ(total number of recodings): recodings
// attributable to the second phase.
func (p PhaseResult) DeltaRecodings() int {
	return p.Final.TotalRecodings - p.AfterBase.TotalRecodings
}

// DeltaMaxColor is the paper's Δ(max color index assigned).
func (p PhaseResult) DeltaMaxColor() int {
	return int(p.Final.MaxColor) - int(p.AfterBase.MaxColor)
}

// RunPhases drives a fresh instance of each named strategy through the
// base script and then the phase script, reporting snapshots at both
// boundaries. Every strategy sees the identical event sequence.
func RunPhases(names []StrategyName, base, phase []strategy.Event, validate bool) ([]PhaseResult, error) {
	results := make([]PhaseResult, 0, len(names))
	for _, name := range names {
		st, err := NewStrategy(name)
		if err != nil {
			return nil, err
		}
		sess := NewSession(st, validate)
		if err := sess.Apply(base); err != nil {
			return nil, fmt.Errorf("%s base phase: %w", name, err)
		}
		afterBase := sess.Snapshot()
		if err := sess.Apply(phase); err != nil {
			return nil, fmt.Errorf("%s second phase: %w", name, err)
		}
		results = append(results, PhaseResult{
			Name:      name,
			AfterBase: afterBase,
			Final:     sess.Snapshot(),
		})
	}
	return results, nil
}

// Run drives a single-phase script (base only) for each strategy.
func Run(names []StrategyName, events []strategy.Event, validate bool) ([]PhaseResult, error) {
	return RunPhases(names, events, nil, validate)
}
