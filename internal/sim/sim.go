// Package sim drives recoding strategies through event scripts and
// snapshots the paper's two metrics (total recodings, maximum color
// index) at phase boundaries. It is the glue between the workload
// generators and the experiment harness.
//
// Since the engine refactor a run hosts all of its strategies on one
// shared incremental network engine (internal/engine): each event is
// decoded once and its delta fanned out, instead of every strategy
// cloning and re-maintaining its own adhoc.Network replica. The
// EngineSession is the event-sourced pipeline the figure sweeps run on;
// the single-strategy Session remains as a thin wrapper over it.
package sim

import (
	"fmt"

	"repro/internal/adhoc"
	"repro/internal/bbb"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/strategy"
	"repro/internal/toca"
)

// Snapshot captures cumulative metrics at a point in a simulation.
type Snapshot struct {
	TotalRecodings int
	MaxColor       toca.Color
	Nodes          int
}

// StrategyName identifies one of the three competing strategies.
type StrategyName string

// The three strategies of the paper's evaluation, plus the strict-move
// CP variant (the literal leave-then-join reading of [3], used by the
// movement ablation).
const (
	Minim    StrategyName = "Minim"
	CP       StrategyName = "CP"
	BBB      StrategyName = "BBB"
	CPStrict StrategyName = "CP-strict"
)

// AllStrategies lists the paper's three competitors in plot order.
var AllStrategies = []StrategyName{Minim, CP, BBB}

// NewStrategy constructs a fresh standalone instance of the named
// strategy (it owns its own network replica). Engine-hosted runs use
// NewSharedStrategy instead.
func NewStrategy(name StrategyName) (strategy.Strategy, error) {
	switch name {
	case Minim:
		return core.New(), nil
	case CP:
		return cp.New(), nil
	case CPStrict:
		return cp.NewStrict(), nil
	case BBB:
		return bbb.New(), nil
	default:
		return nil, fmt.Errorf("sim: unknown strategy %q", name)
	}
}

// NewSharedStrategy constructs an instance of the named strategy hosted
// on an engine-owned network: it reads net but never mutates it, and
// must be subscribed to the owning engine.
func NewSharedStrategy(name StrategyName, net *adhoc.Network) (strategy.Strategy, error) {
	switch name {
	case Minim:
		return core.NewShared(net), nil
	case CP:
		return cp.NewShared(net), nil
	case CPStrict:
		return cp.NewSharedStrict(net), nil
	case BBB:
		return bbb.NewShared(net), nil
	default:
		return nil, fmt.Errorf("sim: unknown strategy %q", name)
	}
}

// entry is one strategy hosted on an EngineSession.
type entry struct {
	name  StrategyName
	strat strategy.Strategy // also an engine.Subscriber
	m     *strategy.Metrics
}

// EngineSession is the event-sourced session pipeline: one engine-owned
// network replica, any number of subscribed strategies, per-strategy
// metric accounting, and phase marks into the engine's event log.
type EngineSession struct {
	eng      *engine.Engine
	entries  []entry
	validate bool
	phases   []int // log offsets at Mark() calls
}

// NewEngineSession hosts fresh instances of the named strategies on one
// new engine. When validate is set, CA1/CA2 are re-verified for every
// strategy after every event (slow; meant for tests and the verify
// tool).
func NewEngineSession(names []StrategyName, validate bool) (*EngineSession, error) {
	eng := engine.New()
	s := &EngineSession{eng: eng, validate: validate}
	for _, name := range names {
		st, err := NewSharedStrategy(name, eng.Network())
		if err != nil {
			return nil, err
		}
		sub, ok := st.(engine.Subscriber)
		if !ok {
			return nil, fmt.Errorf("sim: strategy %q is not engine-hostable", name)
		}
		eng.Subscribe(sub)
		s.entries = append(s.entries, entry{name: name, strat: st, m: strategy.NewMetrics()})
	}
	return s, nil
}

// Engine exposes the underlying engine (read-only use).
func (s *EngineSession) Engine() *engine.Engine { return s.eng }

// Events returns the event-sourced log applied so far.
func (s *EngineSession) Events() []strategy.Event { return s.eng.Log() }

// Mark records the current log position as a phase boundary and returns
// its index.
func (s *EngineSession) Mark() int {
	s.phases = append(s.phases, s.eng.Seq())
	return len(s.phases) - 1
}

// Phases returns the marked phase boundaries as log offsets.
func (s *EngineSession) Phases() []int { return append([]int(nil), s.phases...) }

// Apply runs one phase of events through the engine: each event is
// decoded once and fanned out to every strategy.
func (s *EngineSession) Apply(events []strategy.Event) error {
	for i, ev := range events {
		outs, err := s.eng.Apply(ev)
		if err != nil {
			return fmt.Errorf("sim: event %d: %w", i, err)
		}
		for j := range s.entries {
			s.entries[j].m.Record(ev.Kind, outs[j])
		}
		if s.validate {
			g := s.eng.Network().Graph()
			for _, e := range s.entries {
				if vs := toca.Verify(g, e.strat.Assignment()); len(vs) > 0 {
					return fmt.Errorf("sim: %s: event %d (%v on node %d) left %d violations, first: %v",
						e.name, i, ev.Kind, ev.ID, len(vs), vs[0])
				}
			}
		}
	}
	return nil
}

// StrategyOf returns the hosted instance of the named strategy.
func (s *EngineSession) StrategyOf(name StrategyName) (strategy.Strategy, bool) {
	for _, e := range s.entries {
		if e.name == name {
			return e.strat, true
		}
	}
	return nil, false
}

// MetricsOf returns the metric accumulator of the named strategy.
func (s *EngineSession) MetricsOf(name StrategyName) (*strategy.Metrics, bool) {
	for _, e := range s.entries {
		if e.name == name {
			return e.m, true
		}
	}
	return nil, false
}

// SnapshotOf reports the cumulative metrics of the named strategy.
func (s *EngineSession) SnapshotOf(name StrategyName) (Snapshot, bool) {
	for _, e := range s.entries {
		if e.name == name {
			return Snapshot{
				TotalRecodings: e.m.TotalRecodings,
				MaxColor:       e.m.MaxColor,
				Nodes:          s.eng.Network().Size(),
			}, true
		}
	}
	return Snapshot{}, false
}

// Session couples a single strategy with metric accounting across script
// phases. Standalone strategies (from NewStrategy) are driven through a
// runner over their own network; it remains the convenience wrapper for
// tools that need direct access to one strategy's state.
type Session struct {
	runner *strategy.Runner
}

// NewSession wraps s. When validate is set, CA1/CA2 are re-verified after
// every event (slow; meant for tests and the verify tool).
func NewSession(s strategy.Strategy, validate bool) *Session {
	r := strategy.NewRunner(s)
	r.Validate = validate
	return &Session{runner: r}
}

// Strategy returns the wrapped strategy.
func (s *Session) Strategy() strategy.Strategy { return s.runner.S }

// Apply runs one phase of events.
func (s *Session) Apply(events []strategy.Event) error {
	return s.runner.ApplyAll(events)
}

// Snapshot reports the cumulative metrics so far.
func (s *Session) Snapshot() Snapshot {
	return Snapshot{
		TotalRecodings: s.runner.M.TotalRecodings,
		MaxColor:       s.runner.M.MaxColor,
		Nodes:          s.runner.S.Network().Size(),
	}
}

// PhaseResult reports the snapshots around a two-phase run.
type PhaseResult struct {
	Name      StrategyName
	AfterBase Snapshot
	Final     Snapshot
}

// DeltaRecodings is the paper's Δ(total number of recodings): recodings
// attributable to the second phase.
func (p PhaseResult) DeltaRecodings() int {
	return p.Final.TotalRecodings - p.AfterBase.TotalRecodings
}

// DeltaMaxColor is the paper's Δ(max color index assigned).
func (p PhaseResult) DeltaMaxColor() int {
	return int(p.Final.MaxColor) - int(p.AfterBase.MaxColor)
}

// RunPhases drives fresh instances of the named strategies through the
// base script and then the phase script, reporting snapshots at both
// boundaries. Every strategy sees the identical event sequence, decoded
// exactly once by one shared engine-owned network replica.
func RunPhases(names []StrategyName, base, phase []strategy.Event, validate bool) ([]PhaseResult, error) {
	sess, err := NewEngineSession(names, validate)
	if err != nil {
		return nil, err
	}
	if err := sess.Apply(base); err != nil {
		return nil, fmt.Errorf("base phase: %w", err)
	}
	sess.Mark()
	afterBase := make([]Snapshot, len(names))
	for i, name := range names {
		afterBase[i], _ = sess.SnapshotOf(name)
	}
	if err := sess.Apply(phase); err != nil {
		return nil, fmt.Errorf("second phase: %w", err)
	}
	sess.Mark()
	results := make([]PhaseResult, 0, len(names))
	for i, name := range names {
		final, _ := sess.SnapshotOf(name)
		results = append(results, PhaseResult{
			Name:      name,
			AfterBase: afterBase[i],
			Final:     final,
		})
	}
	return results, nil
}

// Run drives a single-phase script (base only) for each strategy.
func Run(names []StrategyName, events []strategy.Event, validate bool) ([]PhaseResult, error) {
	return RunPhases(names, events, nil, validate)
}

// RunPhasesSharded is RunPhases on the region-partitioned parallel
// runtime (internal/shard): the arena is split into cfg's grid of
// regions, interference-local strategies execute interior events on one
// worker per shard, and border events plus centralized strategies are
// serialized — with results bit-identical to RunPhases. cfg.Validate is
// overridden by the validate argument for signature parity.
func RunPhasesSharded(names []StrategyName, base, phase []strategy.Event, validate bool, cfg shard.Config) ([]PhaseResult, error) {
	strs := make([]string, len(names))
	for i, n := range names {
		strs[i] = string(n)
	}
	specs, err := shard.DefaultSpecs(strs...)
	if err != nil {
		return nil, err
	}
	cfg.Validate = validate
	coord, err := shard.New(cfg, specs)
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	snapshotOf := func(name StrategyName) (Snapshot, error) {
		s, ok, err := coord.SnapshotOf(string(name))
		if err != nil {
			return Snapshot{}, err
		}
		if !ok {
			return Snapshot{}, fmt.Errorf("sim: strategy %q not hosted", name)
		}
		return Snapshot{TotalRecodings: s.TotalRecodings, MaxColor: s.MaxColor, Nodes: s.Nodes}, nil
	}
	if err := coord.Apply(base); err != nil {
		return nil, fmt.Errorf("base phase: %w", err)
	}
	if _, err := coord.Mark(); err != nil {
		return nil, err
	}
	afterBase := make([]Snapshot, len(names))
	for i, name := range names {
		if afterBase[i], err = snapshotOf(name); err != nil {
			return nil, err
		}
	}
	if err := coord.Apply(phase); err != nil {
		return nil, fmt.Errorf("second phase: %w", err)
	}
	if _, err := coord.Mark(); err != nil {
		return nil, err
	}
	results := make([]PhaseResult, 0, len(names))
	for i, name := range names {
		final, err := snapshotOf(name)
		if err != nil {
			return nil, err
		}
		results = append(results, PhaseResult{Name: name, AfterBase: afterBase[i], Final: final})
	}
	return results, nil
}
