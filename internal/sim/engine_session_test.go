package sim

import (
	"reflect"
	"testing"

	"repro/internal/strategy"
	"repro/internal/workload"
)

// TestEngineSessionSharesNetwork: every hosted strategy reads the one
// engine-owned replica — the acceptance criterion of the engine
// refactor.
func TestEngineSessionSharesNetwork(t *testing.T) {
	sess, err := NewEngineSession(AllStrategies, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AllStrategies {
		st, ok := sess.StrategyOf(name)
		if !ok {
			t.Fatalf("%s not hosted", name)
		}
		if st.Network() != sess.Engine().Network() {
			t.Fatalf("%s holds a private network replica", name)
		}
	}
}

// TestEngineSessionEventLog: the session is event-sourced — the applied
// script is recoverable from the log, with phase marks at boundaries.
func TestEngineSessionEventLog(t *testing.T) {
	p := workload.Defaults()
	p.N = 20
	p.RaiseFactor = 2
	base := workload.JoinScript(3, p)
	phase := workload.PowerRaiseScript(3, p)

	sess, err := NewEngineSession(AllStrategies, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Apply(base); err != nil {
		t.Fatal(err)
	}
	sess.Mark()
	if err := sess.Apply(phase); err != nil {
		t.Fatal(err)
	}
	sess.Mark()

	want := append(append([]strategy.Event{}, base...), phase...)
	if !reflect.DeepEqual(sess.Events(), want) {
		t.Fatal("event log does not equal the applied script")
	}
	if got := sess.Phases(); len(got) != 2 || got[0] != len(base) || got[1] != len(base)+len(phase) {
		t.Fatalf("phase marks = %v", got)
	}
}

// TestRunPhasesMatchesLegacySemantics: the engine-backed RunPhases
// produces the same per-strategy results as driving standalone
// strategies through runners (the pre-engine architecture).
func TestRunPhasesMatchesLegacySemantics(t *testing.T) {
	p := workload.Defaults()
	p.N = 30
	p.MaxDisp = 40
	p.RoundNo = 2
	base := workload.JoinScript(6, p)
	phase := workload.MoveScript(6, p)

	got, err := RunPhases(AllStrategies, base, phase, true)
	if err != nil {
		t.Fatal(err)
	}

	for i, name := range AllStrategies {
		st, err := NewStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		sess := NewSession(st, false)
		if err := sess.Apply(base); err != nil {
			t.Fatal(err)
		}
		afterBase := sess.Snapshot()
		if err := sess.Apply(phase); err != nil {
			t.Fatal(err)
		}
		final := sess.Snapshot()
		if got[i].AfterBase != afterBase || got[i].Final != final {
			t.Fatalf("%s: engine run %+v/%+v, standalone %+v/%+v",
				name, got[i].AfterBase, got[i].Final, afterBase, final)
		}
	}
}
