package core

import (
	"testing"

	"repro/internal/adhoc"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/strategy"
	"repro/internal/toca"
	"repro/internal/xrand"
)

func mustJoin(t *testing.T, r *Recoder, id graph.NodeID, x, y, rng float64) strategy.Outcome {
	t.Helper()
	out, err := r.Join(id, adhoc.Config{Pos: geom.Point{X: x, Y: y}, Range: rng})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func checkValid(t *testing.T, r *Recoder) {
	t.Helper()
	if vs := toca.Verify(r.Network().Graph(), r.Assignment()); len(vs) > 0 {
		t.Fatalf("assignment invalid: %v", vs)
	}
}

// randomNet grows a network of n nodes via Minim joins, mirroring the
// paper's section 5.1 setup (positions uniform in the arena, ranges
// uniform in (minr, maxr)).
func randomNet(t *testing.T, rng *xrand.RNG, n int, minr, maxr float64) *Recoder {
	t.Helper()
	r := New()
	for i := 0; i < n; i++ {
		mustJoin(t, r, graph.NodeID(i),
			rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(minr, maxr))
		checkValid(t, r)
	}
	return r
}

func TestFirstJoinGetsColorOne(t *testing.T) {
	r := New()
	out := mustJoin(t, r, 1, 50, 50, 25)
	if got := r.Assignment()[1]; got != 1 {
		t.Fatalf("first node color = %d, want 1", got)
	}
	if out.Recodings() != 1 || out.MaxColor != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestJoinDuplicateErrors(t *testing.T) {
	r := New()
	mustJoin(t, r, 1, 0, 0, 5)
	if _, err := r.Join(1, adhoc.Config{}); err == nil {
		t.Fatal("duplicate join did not error")
	}
}

func TestIsolatedJoinsShareColorOne(t *testing.T) {
	// Far-apart nodes have no constraints; all may reuse color 1.
	r := New()
	mustJoin(t, r, 1, 0, 0, 5)
	mustJoin(t, r, 2, 50, 50, 5)
	mustJoin(t, r, 3, 90, 90, 5)
	for id, c := range r.Assignment() {
		if c != 1 {
			t.Fatalf("node %d color %d, want 1", id, c)
		}
	}
	checkValid(t, r)
}

// TestWorkedJoinExample mirrors the structure of the paper's Fig 4: a
// join that bridges two previously independent clusters whose colorings
// collide. The five nodes of 1n ∪ 2n ∪ {n} become a conflict clique.
func TestWorkedJoinExample(t *testing.T) {
	r := New()
	// Cluster 1: nodes 1,2 mutually connected (colors 1,2).
	mustJoin(t, r, 1, 0, 0, 20)
	mustJoin(t, r, 2, 3, 0, 20)
	// Cluster 2: nodes 3,4 mutually connected (colors 1,2 again).
	mustJoin(t, r, 3, 30, 0, 20)
	mustJoin(t, r, 4, 33, 0, 20)
	a := r.Assignment()
	if a[1] == a[2] || a[3] == a[4] {
		t.Fatalf("setup broken: %v", a)
	}
	if a[1] != 1 || a[2] != 2 || a[3] != 1 || a[4] != 2 {
		t.Fatalf("setup colors = %v, want 1,2,1,2", a)
	}

	// Node 8 joins in the middle with mutual reach to all four.
	part := r.Network().PartitionFor(8, adhoc.Config{Pos: geom.Point{X: 16.5, Y: 0}, Range: 20})
	inOrBoth := part.InOrBoth()
	if len(inOrBoth) != 4 {
		t.Fatalf("1n∪2n = %v, want all four nodes", inOrBoth)
	}
	bound := MinimalJoinBound(r.Assignment(), inOrBoth)
	if bound != 2 {
		t.Fatalf("minimal bound = %d, want 2 (two duplicated classes)", bound)
	}

	before := r.Assignment().Clone()
	out := mustJoin(t, r, 8, 16.5, 0, 20)
	checkValid(t, r)

	// Exactly bound old nodes + the joiner recode (Theorem 4.1.8).
	if got := out.Recodings(); got != bound+1 {
		t.Fatalf("recodings = %d, want %d", got, bound+1)
	}
	// The five mutually conflicting nodes need five distinct colors, so
	// the optimal-among-minimal max color is exactly 5 (Theorem 4.1.9).
	if out.MaxColor != 5 {
		t.Fatalf("max color = %d, want 5", out.MaxColor)
	}
	// One holder of each duplicated class kept its color (weight-3 edge).
	kept1, kept2 := 0, 0
	for _, id := range inOrBoth {
		if r.Assignment()[id] == before[id] {
			if before[id] == 1 {
				kept1++
			} else if before[id] == 2 {
				kept2++
			}
		}
	}
	if kept1 != 1 || kept2 != 1 {
		t.Fatalf("kept per class = %d,%d, want 1,1", kept1, kept2)
	}
}

// TestWorkedPowerIncreaseExample mirrors Fig 6: a range increase that
// creates a conflict recodes only the initiator, to the lowest free
// color.
func TestWorkedPowerIncreaseExample(t *testing.T) {
	r := New()
	mustJoin(t, r, 1, 0, 0, 5)  // color 1
	mustJoin(t, r, 2, 4, 0, 5)  // color 2
	mustJoin(t, r, 3, 20, 0, 5) // color 1 (independent cluster)
	mustJoin(t, r, 4, 24, 0, 5) // color 2
	a := r.Assignment()
	if a[3] != 1 || a[1] != 1 {
		t.Fatalf("setup colors = %v", a)
	}

	// Node 3 raises its range to cover nodes 1 and 2 (distances 20, 16).
	out, err := r.SetRange(3, 21)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, r)
	if out.Recodings() != 1 {
		t.Fatalf("recodings = %d, want 1 (only the initiator)", out.Recodings())
	}
	if _, ok := out.Recoded[3]; !ok {
		t.Fatalf("recoded set %v does not contain the initiator", out.Recoded)
	}
	// Forbidden for node 3: 1 (node 1, CA1), 2 (nodes 2 and 4) => 3.
	if got := r.Assignment()[3]; got != 3 {
		t.Fatalf("node 3 recoded to %d, want lowest free = 3", got)
	}
}

func TestPowerIncreaseNoConflictNoRecode(t *testing.T) {
	r := New()
	mustJoin(t, r, 1, 0, 0, 5)  // color 1
	mustJoin(t, r, 2, 4, 0, 5)  // color 2
	mustJoin(t, r, 3, 20, 0, 5) // color 1, isolated
	// Give node 3 a distinct color by first forcing a conflict.
	if _, err := r.SetRange(3, 21); err != nil {
		t.Fatal(err)
	}
	if r.Assignment()[3] != 3 {
		t.Fatalf("setup: node 3 color = %d", r.Assignment()[3])
	}
	// Raising the range further adds no conflicting constraint (3 is the
	// only node with color 3): zero recodings.
	out, err := r.SetRange(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recodings() != 0 {
		t.Fatalf("recodings = %d, want 0", out.Recodings())
	}
	checkValid(t, r)
}

// TestWorkedLeaveAndDecreaseExample mirrors Fig 7: removals never recode.
func TestWorkedLeaveAndDecreaseExample(t *testing.T) {
	rng := xrand.New(42)
	r := randomNet(t, rng, 30, 20.5, 30.5)
	// Power decrease.
	cfg, _ := r.Network().Config(5)
	out, err := r.SetRange(5, cfg.Range/2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recodings() != 0 {
		t.Fatalf("decrease recoded %d nodes", out.Recodings())
	}
	checkValid(t, r)
	// Leave.
	out, err = r.Leave(7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recodings() != 0 {
		t.Fatalf("leave recoded %d nodes", out.Recodings())
	}
	if _, ok := r.Assignment()[7]; ok {
		t.Fatal("departed node still assigned")
	}
	checkValid(t, r)
}

// TestWorkedMoveExample mirrors Fig 9: the mover keeps its color when the
// matching can afford it, and only a duplicated neighbor recodes.
func TestWorkedMoveExample(t *testing.T) {
	r := New()
	mustJoin(t, r, 1, 0, 0, 20)  // color 1
	mustJoin(t, r, 2, 3, 0, 20)  // color 2
	mustJoin(t, r, 3, 60, 0, 20) // color 1
	mustJoin(t, r, 4, 63, 0, 20) // color 2
	// Node 2 moves next to cluster {3,4}: at (57,0) it reaches 3 (d=3)
	// and 4 (d=6) and loses 1 (d=57).
	out, err := r.Move(2, geom.Point{X: 57, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, r)
	// 1n∪2n = {3,4}, no duplicated classes, so the minimal bound is 0;
	// the mover's old color 2 collides with node 4, but the mover is
	// "recoded anyway" — except its weight-3 edge is infeasible (4 keeps
	// 2 externally? no: 4 is inside V1)... the matching decides: three
	// mutually conflicting nodes {2,3,4} with old colors {2,1,2} need
	// three distinct colors; two can keep (1 and one of the 2s), one
	// recodes. Exactly one recoding.
	if out.Recodings() != 1 {
		t.Fatalf("recodings = %d, want 1", out.Recodings())
	}
	if out.MaxColor != 3 {
		t.Fatalf("max color = %d, want 3", out.MaxColor)
	}
}

// TestJoinMinimalityProperty: on random joins, the number of recoded
// nodes within 1n∪2n equals the Lemma 4.1.1 bound exactly (Thm 4.1.8).
func TestJoinMinimalityProperty(t *testing.T) {
	rng := xrand.New(1001)
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(40)
		r := randomNet(t, rng.Split(), n, 20.5, 30.5)
		id := graph.NodeID(n + 1)
		cfg := adhoc.Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(20.5, 30.5),
		}
		part := r.Network().PartitionFor(id, cfg)
		inOrBoth := part.InOrBoth()
		bound := MinimalJoinBound(r.Assignment(), inOrBoth)
		before := r.Assignment().Clone()

		out, err := r.Join(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, r)

		recodedOld := 0
		for _, u := range inOrBoth {
			if r.Assignment()[u] != before[u] {
				recodedOld++
			}
		}
		if recodedOld != bound {
			t.Fatalf("trial %d: recoded %d of 1n∪2n, bound %d", trial, recodedOld, bound)
		}
		// Nothing outside V1 may change (1-hop locality).
		for u, c := range before {
			if !contains(inOrBoth, u) && r.Assignment()[u] != c {
				t.Fatalf("trial %d: non-local recode of node %d", trial, u)
			}
		}
		// The joiner itself always receives a code.
		if _, ok := out.Recoded[id]; !ok {
			t.Fatalf("trial %d: joiner not in recoded set", trial)
		}
	}
}

// TestMoveMinimalityProperty: for a move, every member of V1 = 1n ∪ 2n
// ∪ {mover} carries an old color, so the Lemma 4.1.1 bound applies to
// the whole of V1: total recodings (mover included) must equal
// Σ(K_i − 1) over the old-color classes of V1 (Theorem 4.4.4), and no
// node outside V1 may change.
func TestMoveMinimalityProperty(t *testing.T) {
	rng := xrand.New(2002)
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(40)
		r := randomNet(t, rng.Split(), n, 20.5, 30.5)
		id := graph.NodeID(rng.Intn(n))
		pos := geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)}
		cfg, _ := r.Network().Config(id)
		cfg.Pos = pos
		part := r.Network().PartitionFor(id, cfg)
		v1 := append(append([]graph.NodeID{}, part.InOrBoth()...), id)
		bound := MinimalJoinBound(r.Assignment(), v1)
		before := r.Assignment().Clone()

		out, err := r.Move(id, pos)
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, r)

		// Unlike 1n∪2n members (Lemma 4.1.6), the mover's old color can
		// be externally forbidden at the destination (e.g. by a 3n node).
		// If the mover is the *sole* holder of its color within V1, its
		// class then keeps no representative and one extra recoding is
		// unavoidable; if the class has other members, one of them keeps
		// the color and the bound is unchanged.
		classSize := 0
		for _, u := range v1 {
			if before[u] == before[id] {
				classSize++
			}
		}
		excl := make(map[graph.NodeID]struct{}, len(v1))
		for _, u := range v1 {
			excl[u] = struct{}{}
		}
		if classSize == 1 &&
			toca.Forbidden(r.Network().Graph(), before, id, excl).Has(before[id]) {
			bound++
		}

		recoded := 0
		for _, u := range v1 {
			if r.Assignment()[u] != before[u] {
				recoded++
			}
		}
		if recoded != bound {
			t.Fatalf("trial %d: recoded %d of V1, bound %d", trial, recoded, bound)
		}
		for u, c := range before {
			if !contains(v1, u) && r.Assignment()[u] != c {
				t.Fatalf("trial %d: non-local recode of node %d", trial, u)
			}
		}
		if out.Recodings() != recoded {
			t.Fatalf("trial %d: outcome reports %d recodings, assignment diff %d",
				trial, out.Recodings(), recoded)
		}
	}
}

// TestPowerIncreaseMinimalityProperty: range increases recode at most the
// initiator (Theorem 4.2.3), and only when its old color conflicts.
func TestPowerIncreaseMinimalityProperty(t *testing.T) {
	rng := xrand.New(3003)
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(40)
		r := randomNet(t, rng.Split(), n, 20.5, 30.5)
		id := graph.NodeID(rng.Intn(n))
		cfg, _ := r.Network().Config(id)
		before := r.Assignment().Clone()

		out, err := r.SetRange(id, cfg.Range*(1+rng.Float64()*3))
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, r)
		if out.Recodings() > 1 {
			t.Fatalf("trial %d: %d recodings on power increase", trial, out.Recodings())
		}
		for u, c := range before {
			if u != id && r.Assignment()[u] != c {
				t.Fatalf("trial %d: power increase recoded other node %d", trial, u)
			}
		}
	}
}

// TestJoinOptimalityAmongMinimal (Theorem 4.1.9): on small instances,
// exhaustively enumerate all valid recodings that touch only V1 and
// achieve the minimal bound; Minim's resulting max color must equal the
// best achievable.
func TestJoinOptimalityAmongMinimal(t *testing.T) {
	rng := xrand.New(4004)
	trials := 0
	for trials < 25 {
		n := 4 + rng.Intn(5)
		r := randomNet(t, rng.Split(), n, 25, 45)
		id := graph.NodeID(n + 1)
		cfg := adhoc.Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(25, 45),
		}
		part := r.Network().PartitionFor(id, cfg)
		inOrBoth := part.InOrBoth()
		if len(inOrBoth) == 0 || len(inOrBoth) > 4 {
			continue // keep the brute force tractable and non-trivial
		}
		trials++
		bound := MinimalJoinBound(r.Assignment(), inOrBoth)
		before := r.Assignment().Clone()

		// Oracle network: apply the join topologically, then enumerate.
		oracleNet := r.Network().Clone()
		if err := oracleNet.Join(id, cfg); err != nil {
			t.Fatal(err)
		}
		v1 := append(append([]graph.NodeID{}, inOrBoth...), id)
		maxTry := before.MaxColor() + toca.Color(len(v1))
		bestMax := toca.Color(1 << 30)
		var enumerate func(i int, trial toca.Assignment)
		enumerate = func(i int, trial toca.Assignment) {
			if i == len(v1) {
				recoded := 0
				for _, u := range inOrBoth {
					if trial[u] != before[u] {
						recoded++
					}
				}
				if recoded != bound {
					return
				}
				if !toca.Valid(oracleNet.Graph(), trial) {
					return
				}
				if m := trial.MaxColor(); m < bestMax {
					bestMax = m
				}
				return
			}
			for c := toca.Color(1); c <= maxTry; c++ {
				trial[v1[i]] = c
				enumerate(i+1, trial)
			}
			delete(trial, v1[i])
		}
		enumerate(0, before.Clone())

		out, err := r.Join(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, r)
		if out.MaxColor != bestMax {
			t.Fatalf("trial %d (|V1|=%d): Minim max color %d, optimal-among-minimal %d",
				trials, len(v1), out.MaxColor, bestMax)
		}
	}
}

// TestOldColorEdgeAlwaysFeasible (Lemma 4.1.6): for every u in 1n∪2n,
// u's old color never conflicts with nodes outside V1 after the join, so
// the weight-3 edge always exists in G'.
func TestOldColorEdgeAlwaysFeasible(t *testing.T) {
	rng := xrand.New(5005)
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(30)
		r := randomNet(t, rng.Split(), n, 20.5, 30.5)
		id := graph.NodeID(n + 1)
		cfg := adhoc.Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(20.5, 30.5),
		}
		part := r.Network().PartitionFor(id, cfg)
		inOrBoth := part.InOrBoth()
		before := r.Assignment().Clone()

		net := r.Network().Clone()
		if err := net.Join(id, cfg); err != nil {
			t.Fatal(err)
		}
		excl := make(map[graph.NodeID]struct{}, len(inOrBoth)+1)
		for _, u := range inOrBoth {
			excl[u] = struct{}{}
		}
		excl[id] = struct{}{}
		for _, u := range inOrBoth {
			forb := toca.Forbidden(net.Graph(), before, u, excl)
			if forb.Has(before[u]) {
				t.Fatalf("trial %d: old color of %d conflicts externally", trial, u)
			}
		}
	}
}

// TestApplyDispatch drives the Strategy interface end to end.
func TestApplyDispatch(t *testing.T) {
	r := New()
	run := strategy.NewRunner(r)
	run.Validate = true
	events := []strategy.Event{
		strategy.JoinEvent(1, adhoc.Config{Pos: geom.Point{X: 10, Y: 10}, Range: 25}),
		strategy.JoinEvent(2, adhoc.Config{Pos: geom.Point{X: 20, Y: 10}, Range: 25}),
		strategy.JoinEvent(3, adhoc.Config{Pos: geom.Point{X: 15, Y: 18}, Range: 25}),
		strategy.MoveEvent(3, geom.Point{X: 60, Y: 60}),
		strategy.PowerEvent(1, 80),
		strategy.LeaveEvent(2),
	}
	if err := run.ApplyAll(events); err != nil {
		t.Fatal(err)
	}
	if run.M.Events != len(events) {
		t.Fatalf("events = %d", run.M.Events)
	}
	if r.Name() != "Minim" {
		t.Fatalf("Name = %q", r.Name())
	}
	if _, err := r.Apply(strategy.Event{Kind: 99}); err == nil {
		t.Fatal("unknown event kind did not error")
	}
}

func TestErrorsOnAbsentNodes(t *testing.T) {
	r := New()
	if _, err := r.Leave(9); err == nil {
		t.Fatal("leave absent")
	}
	if _, err := r.Move(9, geom.Point{}); err == nil {
		t.Fatal("move absent")
	}
	if _, err := r.SetRange(9, 5); err == nil {
		t.Fatal("setrange absent")
	}
}

// TestLongRandomEventStream: hundreds of mixed events keep the assignment
// valid throughout (invariant I1).
func TestLongRandomEventStream(t *testing.T) {
	rng := xrand.New(6006)
	r := New()
	run := strategy.NewRunner(r)
	run.Validate = true
	next := 0
	var present []graph.NodeID
	for step := 0; step < 600; step++ {
		var ev strategy.Event
		switch k := rng.Intn(10); {
		case k < 4 || len(present) == 0: // join (biased to keep net populated)
			ev = strategy.JoinEvent(graph.NodeID(next), adhoc.Config{
				Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
				Range: rng.Uniform(20.5, 30.5),
			})
			present = append(present, graph.NodeID(next))
			next++
		case k < 6: // move
			ev = strategy.MoveEvent(present[rng.Intn(len(present))],
				geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)})
		case k < 8: // power change (increase or decrease)
			id := present[rng.Intn(len(present))]
			cfg, _ := r.Network().Config(id)
			ev = strategy.PowerEvent(id, cfg.Range*rng.Uniform(0.5, 2.5))
		default: // leave
			i := rng.Intn(len(present))
			ev = strategy.LeaveEvent(present[i])
			present = append(present[:i], present[i+1:]...)
		}
		if _, err := run.Apply(ev); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if err := r.Network().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalJoinBound(t *testing.T) {
	a := toca.Assignment{1: 1, 2: 1, 3: 2, 4: 2, 5: 2, 6: 7}
	// classes: 1 x2 (K-1=1), 2 x3 (K-1=2), 7 x1 (K-1=0) => 3
	if got := MinimalJoinBound(a, []graph.NodeID{1, 2, 3, 4, 5, 6}); got != 3 {
		t.Fatalf("bound = %d, want 3", got)
	}
	if got := MinimalJoinBound(a, nil); got != 0 {
		t.Fatalf("empty bound = %d", got)
	}
	// Unassigned nodes contribute nothing.
	if got := MinimalJoinBound(a, []graph.NodeID{1, 99}); got != 0 {
		t.Fatalf("bound with unassigned = %d", got)
	}
}

func contains(ids []graph.NodeID, id graph.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
