package core

import (
	"reflect"
	"testing"

	"repro/internal/adhoc"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/toca"
	"repro/internal/xrand"
)

// TestSolveKeepsUniqueFeasibleColors: when all old colors are distinct
// and externally feasible, Solve keeps every one of them and only the
// fresh node gets a new color.
func TestSolveKeepsUniqueFeasibleColors(t *testing.T) {
	v1 := []graph.NodeID{1, 2, 3, 9}
	old := map[graph.NodeID]toca.Color{1: 1, 2: 2, 3: 3, 9: toca.None}
	forb := map[graph.NodeID]toca.ColorSet{
		1: {}, 2: {}, 3: {}, 9: {},
	}
	got := Solve(v1, old, forb)
	for _, u := range []graph.NodeID{1, 2, 3} {
		if got[u] != old[u] {
			t.Fatalf("node %d recoded %d -> %d", u, old[u], got[u])
		}
	}
	if got[9] == 1 || got[9] == 2 || got[9] == 3 {
		t.Fatalf("fresh node collided: %d", got[9])
	}
}

// TestSolveBreaksDuplicates: a duplicated class keeps exactly one holder.
func TestSolveBreaksDuplicates(t *testing.T) {
	v1 := []graph.NodeID{1, 2, 3}
	old := map[graph.NodeID]toca.Color{1: 5, 2: 5, 3: toca.None}
	forb := map[graph.NodeID]toca.ColorSet{1: {}, 2: {}, 3: {}}
	got := Solve(v1, old, forb)
	kept := 0
	if got[1] == 5 {
		kept++
	}
	if got[2] == 5 {
		kept++
	}
	if kept != 1 {
		t.Fatalf("kept %d holders of color 5: %v", kept, got)
	}
	seen := make(map[toca.Color]bool)
	for _, c := range got {
		if seen[c] {
			t.Fatalf("duplicate color in result: %v", got)
		}
		seen[c] = true
	}
}

// TestSolveRespectsForbidden: no node receives an externally forbidden
// color.
func TestSolveRespectsForbidden(t *testing.T) {
	rng := xrand.New(71)
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(6)
		v1 := make([]graph.NodeID, k)
		old := make(map[graph.NodeID]toca.Color, k)
		forb := make(map[graph.NodeID]toca.ColorSet, k)
		for i := range v1 {
			v1[i] = graph.NodeID(i)
			if rng.Bool() {
				old[v1[i]] = toca.Color(1 + rng.Intn(5))
			}
			fs := toca.NewColorSet()
			for c := toca.Color(1); c <= 6; c++ {
				if rng.Float64() < 0.3 {
					fs.Add(c)
				}
			}
			forb[v1[i]] = fs
		}
		got := Solve(v1, old, forb)
		seen := make(map[toca.Color]graph.NodeID)
		for _, u := range v1 {
			c := got[u]
			if c == toca.None {
				t.Fatalf("trial %d: node %d unassigned", trial, u)
			}
			if forb[u].Has(c) {
				t.Fatalf("trial %d: node %d got forbidden color %d", trial, u, c)
			}
			if prev, dup := seen[c]; dup {
				t.Fatalf("trial %d: nodes %d and %d share color %d", trial, prev, u, c)
			}
			seen[c] = u
		}
	}
}

// TestSolveWeightedCardinalityLosesMinimality: with wOld = 1 (pure
// cardinality) the solver can evict a keeper, recoding more old nodes
// than the minimal bound — the ablation behind DESIGN.md A1.
func TestSolveWeightedCardinalityLosesMinimality(t *testing.T) {
	// Node 1 holds color 1 and could keep it; nodes 2 and 3 are fresh and
	// can ONLY take color 1 and color 2 respectively... craft an instance
	// where max-cardinality prefers displacing node 1:
	//   colors: 1, 2. node1 old=1, feasible {1,2}. node2 feasible {1}.
	// With weights 3/1, matching keeps (1->1) and (2 unmatched? no:
	// 2->... only {1}), so 2 goes fresh (color 3): recodings among old =
	// 0. With weights 1/1 a maximum matching may assign 1->2 and 2->1:
	// same cardinality... weight ties make this nondeterministic, so
	// craft the stronger case: node1 old=1 feasible {1}, nodes 2,3 fresh
	// feasible {1} each plus node 2 also {2}. Cardinality-max: 2->1,
	// 3 unmatched?? Use explicit check: weighted solve never recodes
	// node 1; repeated unit-weight solves must at least once (over many
	// random tie-breaks there is a deterministic answer, so assert only
	// the weighted guarantee and compare totals on a batch).
	rng := xrand.New(9)
	weightedWorse := 0
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(5)
		v1 := make([]graph.NodeID, k)
		old := make(map[graph.NodeID]toca.Color, k)
		forb := make(map[graph.NodeID]toca.ColorSet, k)
		for i := range v1 {
			v1[i] = graph.NodeID(i)
			old[v1[i]] = toca.Color(1 + rng.Intn(3))
			fs := toca.NewColorSet()
			for c := toca.Color(1); c <= 4; c++ {
				if rng.Float64() < 0.25 && c != old[v1[i]] {
					fs.Add(c)
				}
			}
			forb[v1[i]] = fs
		}
		recodes := func(res map[graph.NodeID]toca.Color) int {
			n := 0
			for _, u := range v1 {
				if res[u] != old[u] {
					n++
				}
			}
			return n
		}
		w3 := recodes(SolveWeighted(v1, old, forb, 3, 1))
		w1 := recodes(SolveWeighted(v1, old, forb, 1, 1))
		if w3 > w1 {
			weightedWorse++
		}
		// The weighted solve achieves the minimal bound exactly: classes
		// with duplicates lose K-1 members (all old colors feasible here
		// by construction).
		counts := make(map[toca.Color]int)
		for _, u := range v1 {
			counts[old[u]]++
		}
		bound := 0
		for _, c := range counts {
			bound += c - 1
		}
		if w3 != bound {
			t.Fatalf("trial %d: weighted recodes %d, bound %d", trial, w3, bound)
		}
	}
	if weightedWorse > 0 {
		t.Fatalf("weighted solve recoded more than unit solve in %d trials", weightedWorse)
	}
}

// TestSolveWeightedMatrixDifferential: the scratch path (dense matrix
// fill + sparse forbidden-set zeroing) returns the IDENTICAL colors as
// the nil-scratch edge-list path on random instances, across the
// ablation weight settings — replication parity depends on the exact
// tie-breaking, so "equal weight" is not enough.
func TestSolveWeightedMatrixDifferential(t *testing.T) {
	rng := xrand.New(37)
	s := matching.NewScratch()
	for trial := 0; trial < 400; trial++ {
		k := 1 + rng.Intn(8)
		v1 := make([]graph.NodeID, k)
		old := make(map[graph.NodeID]toca.Color, k)
		forb := make(map[graph.NodeID]toca.ColorSet, k)
		for i := range v1 {
			v1[i] = graph.NodeID(i)
			if rng.Bool() {
				old[v1[i]] = toca.Color(1 + rng.Intn(6))
			}
			fs := toca.NewColorSet()
			for c := toca.Color(1); c <= 7; c++ {
				// Forbidden old colors included: the matrix fill must
				// let the forbidden zero win over the wOld upgrade.
				if rng.Float64() < 0.35 {
					fs.Add(c)
				}
			}
			forb[v1[i]] = fs
		}
		for _, wOld := range []int64{1, 2, 3} {
			want := solveWeighted(nil, v1, old, forb, wOld, 1)
			got := solveWeighted(s, v1, old, forb, wOld, 1)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d wOld=%d: scratch %v, want %v", trial, wOld, got, want)
			}
		}
	}
}

// TestMoveToSamePositionIsNoOp: moving a node onto its own position must
// not recode anything (all old colors stay feasible and the matching
// keeps them).
func TestMoveToSamePositionIsNoOp(t *testing.T) {
	rng := xrand.New(81)
	r := randomNet(t, rng, 25, 20.5, 30.5)
	for _, id := range r.Network().Nodes() {
		cfg, _ := r.Network().Config(id)
		out, err := r.Move(id, cfg.Pos)
		if err != nil {
			t.Fatal(err)
		}
		if out.Recodings() != 0 {
			t.Fatalf("in-place move of %d recoded %d nodes: %v", id, out.Recodings(), out.Recoded)
		}
	}
	checkValid(t, r)
}

// TestPowerDecreaseToZero: a node that shrinks its range to zero keeps a
// valid assignment (it still hears others).
func TestPowerDecreaseToZero(t *testing.T) {
	rng := xrand.New(82)
	r := randomNet(t, rng, 15, 20.5, 30.5)
	out, err := r.SetRange(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recodings() != 0 {
		t.Fatalf("decrease to zero recoded %d", out.Recodings())
	}
	checkValid(t, r)
}

// TestRejoinAfterLeave: a node can leave and rejoin elsewhere; the
// rejoin is a fresh join (no stale color).
func TestRejoinAfterLeave(t *testing.T) {
	rng := xrand.New(83)
	r := randomNet(t, rng, 20, 20.5, 30.5)
	if _, err := r.Leave(5); err != nil {
		t.Fatal(err)
	}
	out, err := r.Join(5, adhoc.Config{Pos: geom.Point{X: 10, Y: 10}, Range: 25})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Recoded[5]; !ok {
		t.Fatal("rejoiner not recoded")
	}
	checkValid(t, r)
}
