package core

import (
	"testing"

	"repro/internal/adhoc"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/strategy"
	"repro/internal/toca"
	"repro/internal/xrand"
)

// TestMaxColorAccumulatorDifferential drives a recoder through random
// mixed churn and asserts, after every event, that the incremental
// max-color accumulator equals a full rescan of the assignment — the
// oracle outcome() used to compute.
func TestMaxColorAccumulatorDifferential(t *testing.T) {
	rng := xrand.New(7)
	r := New()
	present := []graph.NodeID{}
	next := graph.NodeID(0)
	randCfg := func() adhoc.Config {
		return adhoc.Config{
			Pos:   geom.Point{X: rng.Uniform(0, 120), Y: rng.Uniform(0, 120)},
			Range: rng.Uniform(15, 30),
		}
	}
	for step := 0; step < 400; step++ {
		var (
			out strategy.Outcome
			err error
		)
		switch k := rng.Intn(10); {
		case k < 4 || len(present) < 3:
			out, err = r.Join(next, randCfg())
			present = append(present, next)
			next++
		case k < 6:
			i := rng.Intn(len(present))
			out, err = r.Leave(present[i])
			present = append(present[:i], present[i+1:]...)
		case k < 8:
			id := present[rng.Intn(len(present))]
			out, err = r.Move(id, geom.Point{X: rng.Uniform(0, 120), Y: rng.Uniform(0, 120)})
		default:
			id := present[rng.Intn(len(present))]
			out, err = r.SetRange(id, rng.Uniform(10, 40))
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Assignment().MaxColor(); out.MaxColor != want {
			t.Fatalf("step %d: accumulator max %d, rescan %d", step, out.MaxColor, want)
		}
	}
}

// TestSetColorKeepsAccumulator: external writes through SetColor (the
// shard writeback / batch wave path) keep the accumulator consistent,
// including removals that lower the maximum and adoption of a non-empty
// assignment via NewFrom.
func TestSetColorKeepsAccumulator(t *testing.T) {
	seed := toca.Assignment{1: 2, 2: 5, 3: 5}
	r := NewFrom(adhoc.New(), seed)
	check := func(tag string) {
		t.Helper()
		if got, want := r.maxColor, r.assign.MaxColor(); got != want {
			t.Fatalf("%s: accumulator max %d, rescan %d", tag, got, want)
		}
	}
	check("adopted")
	r.SetColor(4, 9)
	check("raise")
	r.SetColor(4, toca.None)
	check("drop max")
	r.SetColor(2, 1)
	r.SetColor(3, 1)
	check("lower both holders of 5")
	r.SetColor(1, toca.None)
	r.SetColor(2, toca.None)
	r.SetColor(3, toca.None)
	check("empty")
	if r.maxColor != toca.None {
		t.Fatalf("empty assignment accumulator max %d, want None", r.maxColor)
	}
}
