// Package core implements the paper's primary contribution: the Minim
// family of minimal recoding strategies for dynamic TOCA code assignment
// in power-controlled ad-hoc networks (section 4 of the paper).
//
//   - RecodeOnJoin (Fig 3): when node n joins, only nodes in
//     1n ∪ 2n ∪ {n} are considered. A maximum-weight bipartite matching
//     between those nodes and the colors 1..max — old-color edges
//     weighted 3, all other feasible edges weighted 1 — selects new
//     colors so that exactly Σ(K_i − 1) old nodes are recoded (the
//     provably minimal number, Lemma 4.1.1/Theorem 4.1.8) while the
//     maximum color index grows the least possible among minimal 1-hop
//     strategies (Theorem 4.1.9).
//   - RecodeOnPowIncrease (Fig 5): every new constraint involves n
//     itself, so at most n is recoded, to the lowest feasible color.
//   - RecodeDecreasePowOrLeave: removals never create conflicts; no node
//     is recoded.
//   - RecodeOnMove (Fig 8): equivalent to a leave followed by a join at
//     the new position (Theorem 4.4.1), executed as one event.
//
// The Recoder implements strategy.Strategy so it can be driven by the
// simulation harness side by side with the CP and BBB baselines.
package core

import (
	"fmt"

	"repro/internal/adhoc"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/strategy"
	"repro/internal/toca"
)

// weightOld is the matching weight of an old-color edge; weightNew is the
// weight of every other feasible edge. The minimality proof requires
// weightOld > 2*weightNew (one kept color must beat any two unit edges);
// the paper uses 3 and 1.
const (
	weightOld int64 = 3
	weightNew int64 = 1
)

// Recoder is the Minim strategy: an ad-hoc network view plus a TOCA
// assignment maintained minimally under reconfiguration events. A
// standalone recoder (New, NewFrom) owns its network and decodes events
// itself via engine.Step; a shared recoder (NewShared) reads an
// engine-owned network and is driven through OnDelta.
type Recoder struct {
	net    *adhoc.Network
	assign toca.Assignment
	shared bool // network is engine-owned; Apply must not mutate it
	// scratch is the Hungarian solver's reusable working memory: one
	// recoder runs its matchings sequentially, so the dense matrices are
	// allocated once per recoder instead of once per event.
	scratch *matching.Scratch
	// colorCount and maxColor form the incremental max-color
	// accumulator: every assignment mutation flows through setColor, so
	// outcome() reads the current maximum in O(1) instead of rescanning
	// the whole assignment after each event. External writers (the shard
	// coordinator's writeback, the batch scheduler's wave commit) must
	// use SetColor, never the raw map.
	colorCount map[toca.Color]int
	maxColor   toca.Color
}

var _ strategy.Strategy = (*Recoder)(nil)
var _ engine.Subscriber = (*Recoder)(nil)

// New returns a Minim recoder over an empty network.
func New() *Recoder {
	return NewFrom(adhoc.New(), make(toca.Assignment))
}

// NewFrom returns a Minim recoder adopting an existing network and
// assignment (both are used directly, not copied).
func NewFrom(net *adhoc.Network, assign toca.Assignment) *Recoder {
	r := &Recoder{net: net, assign: assign, scratch: matching.NewScratch(),
		colorCount: make(map[toca.Color]int, len(assign))}
	for _, c := range assign {
		if c != toca.None {
			r.colorCount[c]++
			if c > r.maxColor {
				r.maxColor = c
			}
		}
	}
	return r
}

// NewShared returns a Minim recoder reading an engine-owned network. It
// never mutates the topology; subscribe it to the owning engine and
// drive it through OnDelta.
func NewShared(net *adhoc.Network) *Recoder {
	r := NewFrom(net, make(toca.Assignment))
	r.shared = true
	return r
}

// Name implements strategy.Strategy.
func (r *Recoder) Name() string { return "Minim" }

// Shared reports whether the recoder's network is engine-owned (the
// recoder must then be driven through OnDelta, never standalone).
func (r *Recoder) Shared() bool { return r.shared }

// Network implements strategy.Strategy.
func (r *Recoder) Network() *adhoc.Network { return r.net }

// Assignment implements strategy.Strategy. Callers must treat the map
// as read-only; external writes go through SetColor so the incremental
// max-color accumulator stays consistent.
func (r *Recoder) Assignment() toca.Assignment { return r.assign }

// SetColor installs a color computed outside the recoder (the shard
// coordinator's writeback, the batch scheduler's wave commits);
// toca.None removes the entry. It keeps the max-color accumulator in
// sync with the mutation.
func (r *Recoder) SetColor(id graph.NodeID, c toca.Color) { r.setColor(id, c) }

// setColor is the single assignment write path: it updates the map and
// the color-count/max-color accumulator together.
func (r *Recoder) setColor(id graph.NodeID, c toca.Color) {
	old := r.assign[id]
	if old == c {
		return
	}
	if old != toca.None {
		if n := r.colorCount[old] - 1; n > 0 {
			r.colorCount[old] = n
		} else {
			delete(r.colorCount, old)
			if old == r.maxColor {
				for r.maxColor > toca.None && r.colorCount[r.maxColor] == 0 {
					r.maxColor--
				}
			}
		}
	}
	r.assign.Set(id, c)
	if c == toca.None {
		return
	}
	r.colorCount[c]++
	if c > r.maxColor {
		r.maxColor = c
	}
}

// Apply implements strategy.Strategy: decode the event on the recoder's
// own network (via the shared engine decoder), then run the recoding.
// Shared recoders are driven by their engine and reject direct Apply.
func (r *Recoder) Apply(ev strategy.Event) (strategy.Outcome, error) {
	if r.shared {
		return strategy.Outcome{}, fmt.Errorf("core: recoder is engine-hosted; apply events through the engine")
	}
	d, err := engine.Step(r.net, ev)
	if err != nil {
		return strategy.Outcome{}, err
	}
	return r.OnDelta(d)
}

// OnDelta implements engine.Subscriber: the per-event recoding
// algorithms, operating on an already-updated topology.
func (r *Recoder) OnDelta(d engine.Delta) (strategy.Outcome, error) {
	switch d.Event.Kind {
	case strategy.Join, strategy.Move:
		// RecodeOnJoin (Fig 3) / RecodeOnMove (Fig 8): the join-style
		// matching recoding over the partition at the (new) position
		// (Theorem 4.4.1: move ≡ leave + join). The mover's old color
		// participates as a weight-3 edge, so it keeps its code whenever
		// the matching can afford it — matching the paper's Fig 9
		// example, where the moving node retains its color.
		recoded := r.recodeLocal(d.Event.ID, d.Part.InOrBoth())
		return r.outcome(recoded), nil
	case strategy.Leave:
		// RecodeDecreasePowOrLeave: nobody is recoded (Theorem 4.3.3:
		// removals introduce no conflicts).
		r.setColor(d.Event.ID, toca.None)
		return r.outcome(nil), nil
	case strategy.PowerChange:
		if !d.Increase {
			// Power decrease only removes edges; the old assignment stays
			// valid and zero nodes are recoded (Theorem 4.3.3).
			return r.outcome(nil), nil
		}
		// Power increase (Fig 5): every new constraint involves the node
		// itself (section 4.2), so recoding it alone suffices — and only
		// if its current color now conflicts.
		id := d.Event.ID
		forb := toca.Forbidden(r.net.Graph(), r.assign, id, nil)
		cur := r.assign[id]
		if cur != toca.None && !forb.Has(cur) {
			return r.outcome(nil), nil
		}
		c := forb.LowestFree()
		r.setColor(id, c)
		return r.outcome(map[graph.NodeID]toca.Color{id: c}), nil
	default:
		return strategy.Outcome{}, fmt.Errorf("core: unknown event kind %v", d.Event.Kind)
	}
}

// Join executes RecodeOnJoin (paper Fig 3) for a new node.
func (r *Recoder) Join(id graph.NodeID, cfg adhoc.Config) (strategy.Outcome, error) {
	return r.Apply(strategy.JoinEvent(id, cfg))
}

// Leave executes RecodeDecreasePowOrLeave for a departing node.
func (r *Recoder) Leave(id graph.NodeID) (strategy.Outcome, error) {
	return r.Apply(strategy.LeaveEvent(id))
}

// Move executes RecodeOnMove (paper Fig 8) as one event.
func (r *Recoder) Move(id graph.NodeID, pos geom.Point) (strategy.Outcome, error) {
	return r.Apply(strategy.MoveEvent(id, pos))
}

// recodeLocal runs steps 1-6 of RecodeOnJoin/RecodeOnMove for node n
// whose relevant neighborhood is inOrBoth = 1n ∪ 2n (already reflecting
// the network *after* the topology change). It mutates the assignment and
// returns the recoded set.
func (r *Recoder) recodeLocal(n graph.NodeID, inOrBoth []graph.NodeID) map[graph.NodeID]toca.Color {
	// V1 = 1n ∪ 2n ∪ {n}, in deterministic order with n last.
	v1 := make([]graph.NodeID, 0, len(inOrBoth)+1)
	v1 = append(v1, inOrBoth...)
	v1 = append(v1, n)

	// Steps 1-2: gather per-node external constraints. Rather than pass
	// the exclude set into every constraint walk (a hash probe per
	// visited node — the profile's dominant cost on this path), the
	// members' colors are lifted out of the assignment for the duration
	// of the walks: an excluded node then contributes None, which
	// ColorSet.Add ignores. Same semantics, zero membership tests. The
	// lift bypasses setColor deliberately — it is restored below before
	// any accumulator-visible mutation.
	old := make(map[graph.NodeID]toca.Color, len(v1))
	for _, u := range v1 {
		old[u] = r.assign[u]
		delete(r.assign, u)
	}
	forb := toca.ForbiddenAll(r.net.Graph(), r.assign, v1)
	for _, u := range v1 {
		if c := old[u]; c != toca.None {
			r.assign[u] = c
		}
	}

	// Steps 3-5 are the pure matching computation.
	newColors := solveWeighted(r.scratch, v1, old, forb, weightOld, weightNew)
	recoded := make(map[graph.NodeID]toca.Color)
	for _, u := range v1 {
		c := newColors[u]
		if r.assign[u] != c {
			recoded[u] = c
		}
		r.setColor(u, c)
	}
	return recoded
}

// Solve is the pure core of RecodeOnJoin/RecodeOnMove (steps 3-5 of the
// paper's Fig 3): given V1 = 1n ∪ 2n ∪ {n}, each member's old color
// (toca.None for a fresh joiner), and each member's externally forbidden
// colors, it returns the new color for every member.
//
// It builds the weighted bipartite graph G' over colors 1..max (max =
// maximum color among old colors and constraints), weights old-color
// edges 3 and all other feasible edges 1, runs maximum-weight matching,
// and hands fresh colors max+1, max+2, ... to unmatched members in V1
// order.
//
// The function is shared by the sequential Recoder and the distributed
// join protocol (package dist), which computes the same inputs from
// protocol messages.
func Solve(v1 []graph.NodeID, old map[graph.NodeID]toca.Color, forb map[graph.NodeID]toca.ColorSet) map[graph.NodeID]toca.Color {
	return SolveWeighted(v1, old, forb, weightOld, weightNew)
}

// SolveWeighted is Solve with explicit edge weights. It exists for the
// weight ablation (DESIGN.md A1): the minimality proof requires
// wOld > 2*wNew, and running the recoder with wOld = 2 or wOld = 1
// demonstrates how the guarantee degrades.
func SolveWeighted(v1 []graph.NodeID, old map[graph.NodeID]toca.Color, forb map[graph.NodeID]toca.ColorSet, wOld, wNew int64) map[graph.NodeID]toca.Color {
	return solveWeighted(nil, v1, old, forb, wOld, wNew)
}

// solveWeighted is the shared implementation. With a nil scratch it
// materializes the edge list and allocates fresh solver state (the
// pure-function path Solve and the dist protocols use). With a scratch
// it skips the edge list entirely: the weight matrix is dense minus the
// forbidden cells, so each row is filled with wNew, the old-color cell
// upgraded to wOld, and only the (sparse) forbidden set is walked to
// zero its cells — O(k·max + Σ|forb|) writes instead of a per-cell
// membership test plus k·max edge appends. Both paths hand the solver
// the identical matrix, so they return the identical matching — same
// tie-breaking — differentially tested here and in internal/matching.
func solveWeighted(s *matching.Scratch, v1 []graph.NodeID, old map[graph.NodeID]toca.Color, forb map[graph.NodeID]toca.ColorSet, wOld, wNew int64) map[graph.NodeID]toca.Color {
	maxC := toca.None
	for _, u := range v1 {
		if m := forb[u].Max(); m > maxC {
			maxC = m
		}
		if c := old[u]; c > maxC {
			maxC = c
		}
	}

	var res matching.Result
	if s != nil {
		nR := int(maxC)
		w := s.WeightMatrix(len(v1), nR)
		for i, u := range v1 {
			row := w[i*nR : (i+1)*nR]
			for j := range row {
				row[j] = wNew
			}
			if c := old[u]; c != toca.None {
				row[c-1] = wOld
			}
			// Forbidden cells last: a forbidden old color stays absent,
			// exactly as the edge build's skip.
			forb[u].ForEach(func(c toca.Color) {
				row[c-1] = 0
			})
		}
		res = s.MaxWeightMatrix(len(v1), nR)
	} else {
		var edges []matching.Edge
		for i, u := range v1 {
			for c := toca.Color(1); c <= maxC; c++ {
				if forb[u].Has(c) {
					continue
				}
				w := wNew
				if c == old[u] {
					w = wOld
				}
				edges = append(edges, matching.Edge{L: i, R: int(c - 1), W: w})
			}
		}
		res = matching.MaxWeight(len(v1), int(maxC), edges)
	}
	out := make(map[graph.NodeID]toca.Color, len(v1))
	next := maxC
	for i, u := range v1 {
		if m := res.MatchL[i]; m >= 0 {
			out[u] = toca.Color(m + 1)
		} else {
			next++
			out[u] = next
		}
	}
	return out
}

// SetRange changes a node's transmission range, running
// RecodeOnPowIncrease (paper Fig 5) for increases and the passive
// RecodeDecreasePowOrLeave for decreases.
func (r *Recoder) SetRange(id graph.NodeID, newRange float64) (strategy.Outcome, error) {
	return r.Apply(strategy.PowerEvent(id, newRange))
}

func (r *Recoder) outcome(recoded map[graph.NodeID]toca.Color) strategy.Outcome {
	return strategy.Outcome{Recoded: recoded, MaxColor: r.maxColor}
}

// MinimalJoinBound returns the paper's Lemma 4.1.1 lower bound on the
// number of 1n ∪ 2n nodes that must be recoded when a node with the
// given partition joins: Σ(K_i − 1) over the old-color classes of
// 1n ∪ 2n. Unassigned nodes contribute no class.
func MinimalJoinBound(assign toca.Assignment, inOrBoth []graph.NodeID) int {
	counts := make(map[toca.Color]int)
	for _, u := range inOrBoth {
		if c := assign[u]; c != toca.None {
			counts[c]++
		}
	}
	bound := 0
	for _, k := range counts {
		bound += k - 1
	}
	return bound
}
