// Package adhoc implements the power-controlled ad-hoc network model of
// the paper's section 2: each node has a position and a maximum
// transmission range, and the induced communication digraph contains the
// edge u -> v exactly when v lies within u's range.
//
// The Network maintains the induced digraph incrementally under the four
// reconfiguration events the paper studies — join, leave, move, and power
// (range) change — and computes the partition sets 1n/2n/3n/4n of Fig 2
// that the recoding strategies operate on.
//
// Since the engine refactor the spatial grid is on by default: New()
// returns a self-indexing network whose grid cell auto-sizes to the
// largest transmission range seen so far, so neighbor scans are local
// from the first join. NewScan() keeps the naive O(n) scan path alive as
// a fallback and as the differential-testing oracle the equivalence
// tests replay against.
package adhoc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/spatial"
	"repro/internal/toca"
)

// Config is a node's physical configuration: its position and maximum
// transmission power range.
type Config struct {
	Pos   geom.Point
	Range float64
}

// Covers reports whether a transmitter with configuration c reaches a
// receiver at position p (the paper's d_ij <= r_i test).
func (c Config) Covers(p geom.Point) bool {
	return c.Pos.DistanceSqTo(p) <= c.Range*c.Range
}

// gridGrowFactor bounds how far the monotone max range may outgrow the
// auto-sized grid cell before the grid is rebuilt with cell = maxRange.
// Queries stay correct at any ratio (the grid scans every overlapped
// cell); the rebuild only restores the at-most-9-cells locality.
const gridGrowFactor = 2.0

// Network is a dynamic power-controlled ad-hoc network: a set of node
// configurations plus the induced communication digraph.
//
// A uniform spatial grid accelerates the neighbor scans every event
// performs: candidate nodes come from cells within
// max(event range, largest range ever seen) of the event position rather
// than from the whole node set. Results are identical to the naive scan
// (the grid is a pure accelerator; equivalence is property-tested).
type Network struct {
	configs map[graph.NodeID]Config
	g       *graph.Digraph
	grid    *spatial.Grid // nil = naive O(n) scans (NewScan, or no positive range yet)
	// autoGrid makes the grid self-sizing: it is (re)built from maxRange
	// as ranges are first seen or outgrow the current cell.
	autoGrid bool
	// maxRange is a monotone upper bound on every range ever present;
	// it bounds how far an in-edge can originate, so grid queries with
	// this radius see every potential coverer. It never shrinks (a node
	// with a huge range leaving degrades query locality, not
	// correctness).
	maxRange float64
	// twoHop caches WithinTwoHops results and conflict caches
	// ConflictNeighbors results. Entries are invalidated by the
	// dirty-ball rule: any event on node id invalidates the 2-hop ball
	// around id in both the pre- and post-event graph, which covers every
	// node whose 2-hop set — and a fortiori whose conflict set, a subset
	// of it — an incident edge flip can change.
	twoHop   map[graph.NodeID][]graph.NodeID
	conflict map[graph.NodeID]map[graph.NodeID]struct{}
}

// New returns an empty network with the spatial grid enabled and
// self-sizing (the default since the engine refactor). The grid cell
// tracks the largest transmission range seen so far; until a positive
// range is noted the network scans naively.
func New() *Network {
	n := NewScan()
	n.autoGrid = true
	return n
}

// NewScan returns an empty network using naive O(n) neighbor scans. It
// is the fallback path and the oracle the grid is differentially tested
// against.
func NewScan() *Network {
	return &Network{
		configs:  make(map[graph.NodeID]Config),
		g:        graph.New(),
		twoHop:   make(map[graph.NodeID][]graph.NodeID),
		conflict: make(map[graph.NodeID]map[graph.NodeID]struct{}),
	}
}

// NewIndexed returns an empty network whose neighbor scans use a uniform
// spatial grid with the given fixed cell size (a good choice is the
// expected maximum transmission range). It panics on a non-positive cell
// size — that is a programmer error, not a runtime condition.
func NewIndexed(cellSize float64) *Network {
	grid, err := spatial.NewGrid(cellSize)
	if err != nil {
		panic(fmt.Sprintf("adhoc: %v", err))
	}
	n := NewScan()
	n.grid = grid
	return n
}

// Indexed reports whether neighbor scans currently use the spatial grid.
func (n *Network) Indexed() bool { return n.grid != nil }

// candidates calls fn for every node other than id that could have an
// edge to or from a node at pos with the given range: with a grid, nodes
// within max(r, maxRange) of pos; without, every node.
func (n *Network) candidates(id graph.NodeID, pos geom.Point, r float64, fn func(graph.NodeID, Config)) {
	if n.grid == nil {
		for other, oc := range n.configs {
			if other != id {
				fn(other, oc)
			}
		}
		return
	}
	radius := r
	if n.maxRange > radius {
		radius = n.maxRange
	}
	n.grid.ForEachWithinRadius(pos, radius, func(other graph.NodeID, _ geom.Point) {
		if other != id {
			fn(other, n.configs[other])
		}
	})
}

// noteRange folds a new range into the monotone maximum and, in autoGrid
// mode, builds or rebuilds the grid when the maximum outgrows the cell.
// The comparison direction is NaN-robust: a NaN never overwrites the
// maximum (and the event methods reject non-finite ranges up front).
func (n *Network) noteRange(r float64) {
	if !(r > n.maxRange) {
		return
	}
	n.maxRange = r
	if !n.autoGrid || n.maxRange <= 0 {
		return
	}
	if n.grid == nil || n.maxRange > gridGrowFactor*n.grid.CellSize() {
		n.regrid(n.maxRange)
	}
}

// regrid rebuilds the grid with the given cell, re-inserting every
// current node. maxRange is monotone, so rebuilds happen O(log(maxR))
// times over a network's lifetime.
func (n *Network) regrid(cell float64) {
	grid, err := spatial.NewGrid(cell)
	if err != nil {
		return // invalid cell: keep the previous grid (or scan path) as is
	}
	for id, cfg := range n.configs {
		grid.Insert(id, cfg.Pos)
	}
	n.grid = grid
}

// Graph exposes the induced digraph. Callers must treat it as read-only;
// all mutation goes through the event methods so the graph stays
// consistent with the configurations.
func (n *Network) Graph() *graph.Digraph { return n.g }

// Size returns the number of nodes currently in the network.
func (n *Network) Size() int { return len(n.configs) }

// Has reports whether id is currently in the network.
func (n *Network) Has(id graph.NodeID) bool {
	_, ok := n.configs[id]
	return ok
}

// Config returns the configuration of id. The second result is false if
// id is not in the network.
func (n *Network) Config(id graph.NodeID) (Config, bool) {
	c, ok := n.configs[id]
	return c, ok
}

// Nodes returns all node IDs in ascending order.
func (n *Network) Nodes() []graph.NodeID { return n.g.Nodes() }

// MaxRange returns the monotone upper bound on every range ever present.
func (n *Network) MaxRange() float64 { return n.maxRange }

// Join adds a node with the given configuration and wires up its induced
// edges. It returns an error if the id is already present or the range is
// negative.
func (n *Network) Join(id graph.NodeID, cfg Config) error {
	if _, ok := n.configs[id]; ok {
		return fmt.Errorf("adhoc: node %d already in network", id)
	}
	if cfg.Range < 0 || math.IsNaN(cfg.Range) || math.IsInf(cfg.Range, 0) {
		return fmt.Errorf("adhoc: node %d has invalid range %g", id, cfg.Range)
	}
	n.configs[id] = cfg
	n.g.AddNode(id)
	n.noteRange(cfg.Range)
	n.candidates(id, cfg.Pos, cfg.Range, func(other graph.NodeID, oc Config) {
		if cfg.Covers(oc.Pos) {
			n.g.AddEdge(id, other)
		}
		if oc.Covers(cfg.Pos) {
			n.g.AddEdge(other, id)
		}
	})
	if n.grid != nil {
		n.grid.Insert(id, cfg.Pos)
	}
	n.invalidateTwoHop(id) // post-state ball covers every new edge
	return nil
}

// Leave removes a node and all its incident edges. It returns an error if
// the id is absent.
func (n *Network) Leave(id graph.NodeID) error {
	if _, ok := n.configs[id]; !ok {
		return fmt.Errorf("adhoc: node %d not in network", id)
	}
	n.invalidateTwoHop(id) // pre-state ball covers every removed edge
	delete(n.configs, id)
	n.g.RemoveNode(id)
	if n.grid != nil {
		n.grid.Remove(id)
	}
	return nil
}

// Move changes a node's position and rewires its incident edges in both
// directions (its own coverage changes, and other nodes may gain or lose
// coverage of it).
func (n *Network) Move(id graph.NodeID, pos geom.Point) error {
	cfg, ok := n.configs[id]
	if !ok {
		return fmt.Errorf("adhoc: node %d not in network", id)
	}
	n.invalidateTwoHop(id)
	cfg.Pos = pos
	n.configs[id] = cfg
	if n.grid != nil {
		n.grid.Move(id, pos)
	}
	n.rewire(id)
	n.invalidateTwoHop(id)
	return nil
}

// SetRange changes a node's maximum transmission range. Only the node's
// own out-edges are affected (in-edges depend on other nodes' ranges).
func (n *Network) SetRange(id graph.NodeID, r float64) error {
	cfg, ok := n.configs[id]
	if !ok {
		return fmt.Errorf("adhoc: node %d not in network", id)
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("adhoc: node %d invalid range %g", id, r)
	}
	n.invalidateTwoHop(id)
	cfg.Range = r
	n.configs[id] = cfg
	n.noteRange(r)
	// Range change only alters id's coverage of others. Drop every
	// current out-edge beyond the new radius, then add newly covered
	// nodes from the candidate set.
	for _, other := range n.g.OutNeighbors(id) {
		if !cfg.Covers(n.configs[other].Pos) {
			n.g.RemoveEdge(id, other)
		}
	}
	n.candidates(id, cfg.Pos, cfg.Range, func(other graph.NodeID, oc Config) {
		if cfg.Covers(oc.Pos) {
			n.g.AddEdge(id, other)
		}
	})
	n.invalidateTwoHop(id)
	return nil
}

// rewire recomputes all edges incident to id from the configurations:
// stale incident edges are checked directly, new ones come from the
// candidate set around the (new) position.
func (n *Network) rewire(id graph.NodeID) {
	cfg := n.configs[id]
	for _, other := range n.g.OutNeighbors(id) {
		if !cfg.Covers(n.configs[other].Pos) {
			n.g.RemoveEdge(id, other)
		}
	}
	for _, other := range n.g.InNeighbors(id) {
		if !n.configs[other].Covers(cfg.Pos) {
			n.g.RemoveEdge(other, id)
		}
	}
	n.candidates(id, cfg.Pos, cfg.Range, func(other graph.NodeID, oc Config) {
		if cfg.Covers(oc.Pos) {
			n.g.AddEdge(id, other)
		}
		if oc.Covers(cfg.Pos) {
			n.g.AddEdge(other, id)
		}
	})
}

// invalidateTwoHop drops every cached 2-hop and conflict entry an edge
// flip incident to id (in the graph's current state) can change: an
// edge (id, v) lies on a path of length <= 2 from x exactly when x is
// within one hop of id or of v, so the union of {id}, N(id), and
// N(N(id)) over-approximates the affected set (the conflict set of x is
// a subset of its 2-hop ball, so the same rule covers it). Callers
// invoke it both before and after mutating so pre- and post-state balls
// are both covered.
func (n *Network) invalidateTwoHop(id graph.NodeID) {
	if len(n.twoHop) == 0 && len(n.conflict) == 0 {
		return
	}
	drop := func(v graph.NodeID) {
		delete(n.twoHop, v)
		delete(n.conflict, v)
	}
	drop(id)
	visit := func(v graph.NodeID) {
		drop(v)
		n.g.ForEachOut(v, drop)
		n.g.ForEachIn(v, drop)
	}
	n.g.ForEachOut(id, visit)
	n.g.ForEachIn(id, visit)
}

// WithinTwoHops returns all nodes within two undirected hops of id,
// excluding id itself, ascending. Results are cached; reconfiguration
// events invalidate only the local ball around the event node, so
// repeated queries across a mostly-static network skip the BFS the
// uncached graph.WithinHops re-runs from scratch.
func (n *Network) WithinTwoHops(id graph.NodeID) []graph.NodeID {
	if s, ok := n.twoHop[id]; ok {
		return s
	}
	s := n.g.WithinHops(id, 2)
	n.twoHop[id] = s
	return s
}

// ConflictNeighbors returns the CA1/CA2 conflict neighborhood of id
// (toca.ConflictNeighbors) served from the incremental cache. The
// returned map is shared: callers must not mutate it. Invalidation
// follows the same dirty-ball rule as WithinTwoHops, so the per-event
// cost is local while repeated Forbidden computations across events
// reuse each node's set.
//
// Not safe for concurrent use — parallel readers (batch proposals) must
// go through toca.ConflictNeighbors directly.
func (n *Network) ConflictNeighbors(id graph.NodeID) map[graph.NodeID]struct{} {
	if s, ok := n.conflict[id]; ok {
		return s
	}
	s := toca.ConflictNeighbors(n.g, id)
	n.conflict[id] = s
	return s
}

// ConflictGraph materializes the full TOCA conflict graph from the
// cached per-node conflict sets: across consecutive events only the
// dirty ball is recomputed, so centralized recoloring (BBB) stops
// rebuilding every node's neighborhood from scratch per event.
func (n *Network) ConflictGraph() map[graph.NodeID][]graph.NodeID {
	return toca.ConflictGraphFrom(n.g.Nodes(), n.ConflictNeighbors)
}

// Partition is the paper's Fig 2 decomposition of the existing nodes
// relative to a (joining or moving) node n:
//
//	In    (1n): nodes with an edge to n only (n hears them)
//	Both  (2n): nodes with edges in both directions
//	Out   (3n): nodes n has an edge to only (they hear n)
//	None  (4n): nodes with no edge to or from n
//
// All slices are sorted ascending.
type Partition struct {
	In   []graph.NodeID
	Both []graph.NodeID
	Out  []graph.NodeID
	None []graph.NodeID
}

// InOrBoth returns 1n union 2n — the set whose members, together with n,
// must end up with mutually distinct colors after a join or move.
func (p Partition) InOrBoth() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(p.In)+len(p.Both))
	out = append(out, p.In...)
	out = append(out, p.Both...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PartitionFor computes the Fig 2 partition of all *other* current nodes
// relative to the hypothetical configuration cfg of node id. The node
// itself may or may not currently be in the network (it is skipped); this
// lets callers evaluate a join before performing it, and a move at its
// destination.
func (n *Network) PartitionFor(id graph.NodeID, cfg Config) Partition {
	p := n.LocalPartitionFor(id, cfg)
	connected := make(map[graph.NodeID]struct{}, len(p.In)+len(p.Both)+len(p.Out))
	for _, lst := range [][]graph.NodeID{p.In, p.Both, p.Out} {
		for _, u := range lst {
			connected[u] = struct{}{}
		}
	}
	for other := range n.configs {
		if other == id {
			continue
		}
		if _, ok := connected[other]; !ok {
			p.None = append(p.None, other)
		}
	}
	sort.Slice(p.None, func(i, j int) bool { return p.None[i] < p.None[j] })
	return p
}

// LocalPartitionFor is PartitionFor without the 4n (None) set. The
// recoding strategies only consume 1n/2n/3n, and skipping 4n keeps the
// per-event cost local (4n is by definition everyone else, an O(n)
// enumeration). This is the hot-path entry the engine uses.
func (n *Network) LocalPartitionFor(id graph.NodeID, cfg Config) Partition {
	var p Partition
	n.candidates(id, cfg.Pos, cfg.Range, func(other graph.NodeID, oc Config) {
		hearsUs := cfg.Covers(oc.Pos) // would create id -> other
		weHear := oc.Covers(cfg.Pos)  // would create other -> id
		switch {
		case weHear && hearsUs:
			p.Both = append(p.Both, other)
		case weHear:
			p.In = append(p.In, other)
		case hearsUs:
			p.Out = append(p.Out, other)
		}
	})
	for _, lst := range [][]graph.NodeID{p.In, p.Both, p.Out} {
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
	}
	return p
}

// Clone returns a deep copy of the network. Strategies being compared on
// the same event script each get their own clone.
func (n *Network) Clone() *Network {
	var c *Network
	switch {
	case n.autoGrid:
		c = New()
	case n.grid != nil:
		c = NewIndexed(n.gridCell())
	default:
		c = NewScan()
	}
	c.maxRange = n.maxRange
	if c.autoGrid && c.maxRange > 0 {
		c.regrid(c.maxRange)
	}
	for id, cfg := range n.configs {
		c.configs[id] = cfg
		if c.grid != nil {
			c.grid.Insert(id, cfg.Pos)
		}
	}
	c.g = n.g.Clone()
	return c
}

// gridCell reports the indexed network's cell size (0 when naive).
func (n *Network) gridCell() float64 {
	if n.grid == nil {
		return 0
	}
	return n.grid.CellSize()
}

// CheckConsistency verifies that the maintained digraph matches the edges
// induced by the configurations and that the grid (when present) indexes
// exactly the current positions, returning the first mismatch. Intended
// for tests and the cmd/verify tool.
func (n *Network) CheckConsistency() error {
	for u, uc := range n.configs {
		for v, vc := range n.configs {
			if u == v {
				continue
			}
			want := uc.Covers(vc.Pos)
			got := n.g.HasEdge(u, v)
			if want != got {
				return fmt.Errorf("adhoc: edge %d->%d induced=%v stored=%v", u, v, want, got)
			}
		}
	}
	if n.g.NumNodes() != len(n.configs) {
		return fmt.Errorf("adhoc: graph has %d nodes, configs %d", n.g.NumNodes(), len(n.configs))
	}
	if n.grid != nil {
		if n.grid.Len() != len(n.configs) {
			return fmt.Errorf("adhoc: grid indexes %d nodes, configs %d", n.grid.Len(), len(n.configs))
		}
		for id, cfg := range n.configs {
			if p, ok := n.grid.Position(id); !ok || p != cfg.Pos {
				return fmt.Errorf("adhoc: grid position of %d is %v, config %v", id, p, cfg.Pos)
			}
		}
		if err := n.grid.Validate(); err != nil {
			return err
		}
	}
	return n.g.Validate()
}

// MinimalConnectivityOK reports whether the paper's Minimal Connectivity
// assumption holds for node id under configuration cfg: there must exist
// nodes j and k (j, k != id) such that j is within id's range and id is
// within k's range.
func (n *Network) MinimalConnectivityOK(id graph.NodeID, cfg Config) bool {
	var hearsSomeone, someoneHears bool
	n.candidates(id, cfg.Pos, cfg.Range, func(other graph.NodeID, oc Config) {
		if cfg.Covers(oc.Pos) {
			hearsSomeone = true // id transmits to other (other hears id)
		}
		if oc.Covers(cfg.Pos) {
			someoneHears = true // other transmits to id
		}
	})
	return hearsSomeone && someoneHears
}
