package adhoc

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestAutoGridDefault: New() self-indexes — the grid appears with the
// first positive range, its cell tracks the monotone max range, and the
// network stays equivalent to the scan oracle throughout.
func TestAutoGridDefault(t *testing.T) {
	n := New()
	if n.Indexed() {
		t.Fatal("empty network already has a grid")
	}
	if err := n.Join(1, Config{Pos: geom.Point{X: 5, Y: 5}, Range: 10}); err != nil {
		t.Fatal(err)
	}
	if !n.Indexed() {
		t.Fatal("grid not built after first positive range")
	}
	if got := n.gridCell(); got != 10 {
		t.Fatalf("cell = %g, want 10 (the max range)", got)
	}
	// A range within the grow factor keeps the cell.
	if err := n.Join(2, Config{Pos: geom.Point{X: 20, Y: 5}, Range: 15}); err != nil {
		t.Fatal(err)
	}
	if got := n.gridCell(); got != 10 {
		t.Fatalf("cell = %g after range 15, want 10 (within grow factor)", got)
	}
	// Outgrowing the factor rebuilds with cell = maxRange.
	if err := n.Join(3, Config{Pos: geom.Point{X: 40, Y: 40}, Range: 35}); err != nil {
		t.Fatal(err)
	}
	if got := n.gridCell(); got != 35 {
		t.Fatalf("cell = %g after range 35, want 35 (regrid)", got)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoGridZeroRanges: all-zero ranges never build a grid (cell must
// be positive) and the network still works via the scan path.
func TestAutoGridZeroRanges(t *testing.T) {
	n := New()
	for i := 0; i < 5; i++ {
		if err := n.Join(graph.NodeID(i), Config{Pos: geom.Point{X: float64(i), Y: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if n.Indexed() {
		t.Fatal("grid built from zero ranges")
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoGridEquivalence: the default self-indexing network matches the
// scan oracle on a random mixed event script, including after regrids.
func TestAutoGridEquivalence(t *testing.T) {
	rng := xrand.New(77)
	auto, scan := New(), NewScan()
	next := 0
	var present []graph.NodeID
	for step := 0; step < 300; step++ {
		switch k := rng.Intn(8); {
		case k < 3 || len(present) == 0:
			cfg := Config{
				Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
				Range: rng.Uniform(0, 50), // wide spread forces regrids
			}
			id := graph.NodeID(next)
			next++
			if auto.Join(id, cfg) != nil || scan.Join(id, cfg) != nil {
				t.Fatal("join failed")
			}
			present = append(present, id)
		case k < 5:
			id := present[rng.Intn(len(present))]
			pos := geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)}
			if auto.Move(id, pos) != nil || scan.Move(id, pos) != nil {
				t.Fatal("move failed")
			}
		case k < 7:
			id := present[rng.Intn(len(present))]
			r := rng.Uniform(0, 60)
			if auto.SetRange(id, r) != nil || scan.SetRange(id, r) != nil {
				t.Fatal("setrange failed")
			}
		default:
			i := rng.Intn(len(present))
			id := present[i]
			present = append(present[:i], present[i+1:]...)
			if auto.Leave(id) != nil || scan.Leave(id) != nil {
				t.Fatal("leave failed")
			}
		}
		if !reflect.DeepEqual(auto.Graph().Edges(), scan.Graph().Edges()) {
			t.Fatalf("step %d: auto and scan digraphs diverge", step)
		}
	}
	if err := auto.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if !auto.Indexed() {
		t.Fatal("auto network never built its grid")
	}
}

// TestAutoGridClone: clones of auto-indexed networks stay auto-indexed
// and carry the grid.
func TestAutoGridClone(t *testing.T) {
	n := New()
	if err := n.Join(1, Config{Pos: geom.Point{X: 5, Y: 5}, Range: 12}); err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	if !c.Indexed() || !c.autoGrid {
		t.Fatal("clone lost auto-indexing")
	}
	if err := c.Join(2, Config{Pos: geom.Point{X: 8, Y: 5}, Range: 12}); err != nil {
		t.Fatal(err)
	}
	if !c.Graph().HasEdge(1, 2) {
		t.Fatal("clone missed an edge")
	}
	if n.Has(2) {
		t.Fatal("clone mutation leaked into the original")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Scan networks clone to scan networks.
	if NewScan().Clone().Indexed() {
		t.Fatal("scan clone grew a grid")
	}
}

// TestNonFiniteRangeRejected: NaN/Inf ranges must be rejected at the
// event boundary — a NaN reaching noteRange once poisoned the monotone
// maxRange bound (NaN comparisons made it overwritable), after which
// the grid queried too small a radius and dropped induced edges.
func TestNonFiniteRangeRejected(t *testing.T) {
	n := New()
	if err := n.Join(1, Config{Pos: geom.Point{X: 0, Y: 0}, Range: 50}); err != nil {
		t.Fatal(err)
	}
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1}
	for _, r := range bad {
		if err := n.Join(2, Config{Pos: geom.Point{X: 1, Y: 1}, Range: r}); err == nil {
			t.Fatalf("Join accepted range %g", r)
		}
		if err := n.SetRange(1, r); err == nil {
			t.Fatalf("SetRange accepted range %g", r)
		}
	}
	// The monotone bound survives the rejected attempts: a later join at
	// distance 40 must still be covered by node 1's range-50 query.
	if err := n.Join(3, Config{Pos: geom.Point{X: 40, Y: 0}, Range: 10}); err != nil {
		t.Fatal(err)
	}
	if !n.Graph().HasEdge(1, 3) {
		t.Fatal("induced edge 1->3 missing: maxRange bound was corrupted")
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestWithinTwoHopsCache: the cached 2-hop neighborhood equals a fresh
// BFS after every kind of reconfiguration event, for every node.
func TestWithinTwoHopsCache(t *testing.T) {
	rng := xrand.New(42)
	n := New()
	next := 0
	var present []graph.NodeID
	check := func(step int) {
		for _, id := range present {
			got := n.WithinTwoHops(id)
			want := n.Graph().WithinHops(id, 2)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: WithinTwoHops(%d) = %v, BFS = %v", step, id, got, want)
			}
		}
	}
	for step := 0; step < 200; step++ {
		switch k := rng.Intn(8); {
		case k < 3 || len(present) == 0:
			cfg := Config{
				Pos:   geom.Point{X: rng.Uniform(0, 60), Y: rng.Uniform(0, 60)},
				Range: rng.Uniform(5, 25),
			}
			id := graph.NodeID(next)
			next++
			if err := n.Join(id, cfg); err != nil {
				t.Fatal(err)
			}
			present = append(present, id)
		case k < 5:
			id := present[rng.Intn(len(present))]
			if err := n.Move(id, geom.Point{X: rng.Uniform(0, 60), Y: rng.Uniform(0, 60)}); err != nil {
				t.Fatal(err)
			}
		case k < 7:
			id := present[rng.Intn(len(present))]
			if err := n.SetRange(id, rng.Uniform(0, 30)); err != nil {
				t.Fatal(err)
			}
		default:
			i := rng.Intn(len(present))
			id := present[i]
			present = append(present[:i], present[i+1:]...)
			if err := n.Leave(id); err != nil {
				t.Fatal(err)
			}
		}
		// Query everything (primes the cache), then re-check next round:
		// stale entries would surface as mismatches after later events.
		check(step)
	}
}
