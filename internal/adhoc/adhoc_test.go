package adhoc

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// lineNet builds the canonical asymmetric example: three nodes on a line
// where 1 covers 2, 2 covers 1 and 3, and 3 covers only 2.
func lineNet(t *testing.T) *Network {
	t.Helper()
	n := New()
	must(t, n.Join(1, Config{Pos: geom.Point{X: 0, Y: 0}, Range: 10}))
	must(t, n.Join(2, Config{Pos: geom.Point{X: 8, Y: 0}, Range: 12}))
	must(t, n.Join(3, Config{Pos: geom.Point{X: 16, Y: 0}, Range: 9}))
	return n
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinInducesEdges(t *testing.T) {
	n := lineNet(t)
	g := n.Graph()
	type e struct{ u, v graph.NodeID }
	want := map[e]bool{
		{1, 2}: true,  // d=8 <= 10
		{2, 1}: true,  // d=8 <= 12
		{2, 3}: true,  // d=8 <= 12
		{3, 2}: true,  // d=8 <= 9
		{1, 3}: false, // d=16 > 10
		{3, 1}: false, // d=16 > 9
	}
	for ed, w := range want {
		if got := g.HasEdge(ed.u, ed.v); got != w {
			t.Errorf("edge %d->%d = %v, want %v", ed.u, ed.v, got, w)
		}
	}
	must(t, n.CheckConsistency())
}

func TestJoinDuplicate(t *testing.T) {
	n := lineNet(t)
	if err := n.Join(1, Config{}); err == nil {
		t.Fatal("duplicate join did not error")
	}
}

func TestJoinNegativeRange(t *testing.T) {
	n := New()
	if err := n.Join(1, Config{Range: -1}); err == nil {
		t.Fatal("negative range join did not error")
	}
}

func TestLeave(t *testing.T) {
	n := lineNet(t)
	must(t, n.Leave(2))
	if n.Has(2) || n.Size() != 2 {
		t.Fatal("leave failed")
	}
	if n.Graph().NumEdges() != 0 {
		t.Fatalf("edges left: %d", n.Graph().NumEdges())
	}
	if err := n.Leave(2); err == nil {
		t.Fatal("double leave did not error")
	}
	must(t, n.CheckConsistency())
}

func TestMoveRewiresBothDirections(t *testing.T) {
	n := lineNet(t)
	// Move node 3 next to node 1: now 1<->3 connect, 3's link to 2 holds
	// (d=7 <= 9 and 12).
	must(t, n.Move(3, geom.Point{X: 1, Y: 0}))
	g := n.Graph()
	if !g.HasEdge(1, 3) || !g.HasEdge(3, 1) {
		t.Fatal("move did not create edges to new neighbor")
	}
	if !g.HasEdge(3, 2) || !g.HasEdge(2, 3) {
		t.Fatal("move broke surviving link")
	}
	must(t, n.CheckConsistency())
	if err := n.Move(42, geom.Point{}); err == nil {
		t.Fatal("move of absent node did not error")
	}
}

func TestSetRangeOnlyAffectsOwnCoverage(t *testing.T) {
	n := lineNet(t)
	// Grow node 1's range to cover node 3 (d=16).
	must(t, n.SetRange(1, 20))
	g := n.Graph()
	if !g.HasEdge(1, 3) {
		t.Fatal("range increase did not add out-edge")
	}
	if g.HasEdge(3, 1) {
		t.Fatal("range increase of 1 must not add 3->1")
	}
	// Shrink node 1's range below everything.
	must(t, n.SetRange(1, 1))
	if g.HasEdge(1, 2) || g.HasEdge(1, 3) {
		t.Fatal("range decrease did not drop out-edges")
	}
	if !g.HasEdge(2, 1) {
		t.Fatal("range decrease of 1 must keep 2->1")
	}
	must(t, n.CheckConsistency())
	if err := n.SetRange(1, -2); err == nil {
		t.Fatal("negative range did not error")
	}
	if err := n.SetRange(77, 5); err == nil {
		t.Fatal("absent node did not error")
	}
}

func TestConfigCovers(t *testing.T) {
	c := Config{Pos: geom.Point{X: 0, Y: 0}, Range: 5}
	if !c.Covers(geom.Point{X: 3, Y: 4}) { // exactly on the boundary
		t.Fatal("boundary point not covered")
	}
	if c.Covers(geom.Point{X: 3.01, Y: 4}) {
		t.Fatal("outside point covered")
	}
}

func TestPartitionFor(t *testing.T) {
	n := New()
	// Node 10 at origin r=10: candidate n at (5,0) with r=6.
	//  - 10: d=5; 10 covers n (5<=10), n covers 10 (5<=6)      -> Both
	//  - 11 at (9,0) r=2: d=4; n covers 11, 11 doesn't cover n -> Out
	//  - 12 at (5,8) r=20: d=8; 12 covers n, n doesn't (8>6)   -> In
	//  - 13 at (50,50) r=5: neither                            -> None
	must(t, n.Join(10, Config{Pos: geom.Point{X: 0, Y: 0}, Range: 10}))
	must(t, n.Join(11, Config{Pos: geom.Point{X: 9, Y: 0}, Range: 2}))
	must(t, n.Join(12, Config{Pos: geom.Point{X: 5, Y: 8}, Range: 20}))
	must(t, n.Join(13, Config{Pos: geom.Point{X: 50, Y: 50}, Range: 5}))

	p := n.PartitionFor(99, Config{Pos: geom.Point{X: 5, Y: 0}, Range: 6})
	if !reflect.DeepEqual(p.Both, []graph.NodeID{10}) {
		t.Errorf("Both = %v, want [10]", p.Both)
	}
	if !reflect.DeepEqual(p.Out, []graph.NodeID{11}) {
		t.Errorf("Out = %v, want [11]", p.Out)
	}
	if !reflect.DeepEqual(p.In, []graph.NodeID{12}) {
		t.Errorf("In = %v, want [12]", p.In)
	}
	if !reflect.DeepEqual(p.None, []graph.NodeID{13}) {
		t.Errorf("None = %v, want [13]", p.None)
	}
	if got := p.InOrBoth(); !reflect.DeepEqual(got, []graph.NodeID{10, 12}) {
		t.Errorf("InOrBoth = %v, want [10 12]", got)
	}
}

func TestPartitionSkipsSelf(t *testing.T) {
	n := lineNet(t)
	cfg, _ := n.Config(2)
	p := n.PartitionFor(2, cfg)
	for _, lst := range [][]graph.NodeID{p.In, p.Both, p.Out, p.None} {
		for _, id := range lst {
			if id == 2 {
				t.Fatal("partition contains the node itself")
			}
		}
	}
	if got := len(p.In) + len(p.Both) + len(p.Out) + len(p.None); got != 2 {
		t.Fatalf("partition covers %d nodes, want 2", got)
	}
}

// TestPartitionMatchesPostJoinEdges: the partition predicted before a
// join must coincide with the actual edges after the join.
func TestPartitionMatchesPostJoinEdges(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := New()
		numNodes := 3 + rng.Intn(15)
		for i := 0; i < numNodes; i++ {
			cfg := Config{
				Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
				Range: rng.Uniform(20.5, 30.5),
			}
			if err := n.Join(graph.NodeID(i), cfg); err != nil {
				return false
			}
		}
		newID := graph.NodeID(numNodes)
		cfg := Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(20.5, 30.5),
		}
		p := n.PartitionFor(newID, cfg)
		if err := n.Join(newID, cfg); err != nil {
			return false
		}
		g := n.Graph()
		for _, u := range p.In {
			if !g.HasEdge(u, newID) || g.HasEdge(newID, u) {
				return false
			}
		}
		for _, u := range p.Both {
			if !g.HasEdge(u, newID) || !g.HasEdge(newID, u) {
				return false
			}
		}
		for _, u := range p.Out {
			if g.HasEdge(u, newID) || !g.HasEdge(newID, u) {
				return false
			}
		}
		for _, u := range p.None {
			if g.HasEdge(u, newID) || g.HasEdge(newID, u) {
				return false
			}
		}
		return n.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := lineNet(t)
	c := n.Clone()
	must(t, c.Move(3, geom.Point{X: 1, Y: 0}))
	must(t, c.Join(4, Config{Pos: geom.Point{X: 2, Y: 0}, Range: 50}))
	if n.Has(4) {
		t.Fatal("clone join leaked")
	}
	cfg, _ := n.Config(3)
	if cfg.Pos.X != 16 {
		t.Fatal("clone move leaked")
	}
	must(t, n.CheckConsistency())
	must(t, c.CheckConsistency())
}

func TestMinimalConnectivityOK(t *testing.T) {
	n := New()
	must(t, n.Join(1, Config{Pos: geom.Point{X: 0, Y: 0}, Range: 10}))
	must(t, n.Join(2, Config{Pos: geom.Point{X: 5, Y: 0}, Range: 10}))
	// A node between them with enough range satisfies the assumption.
	ok := n.MinimalConnectivityOK(3, Config{Pos: geom.Point{X: 2, Y: 0}, Range: 4})
	if !ok {
		t.Fatal("expected minimal connectivity to hold")
	}
	// A node too far away hears nobody and is heard by nobody.
	if n.MinimalConnectivityOK(3, Config{Pos: geom.Point{X: 90, Y: 90}, Range: 4}) {
		t.Fatal("expected minimal connectivity to fail")
	}
	// A node that hears others but cannot reach anyone fails too (range 0
	// still lets others cover it).
	if n.MinimalConnectivityOK(3, Config{Pos: geom.Point{X: 2, Y: 0}, Range: 0}) {
		t.Fatal("deaf transmitter should fail minimal connectivity")
	}
}

// TestRandomEventConsistency drives a random event mix and checks the
// incremental graph always matches the from-scratch induced graph.
func TestRandomEventConsistency(t *testing.T) {
	rng := xrand.New(777)
	n := New()
	next := 0
	ids := []graph.NodeID{}
	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0: // join
			cfg := Config{
				Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
				Range: rng.Uniform(5, 40),
			}
			must(t, n.Join(graph.NodeID(next), cfg))
			ids = append(ids, graph.NodeID(next))
			next++
		case 1: // leave
			if len(ids) > 0 {
				i := rng.Intn(len(ids))
				must(t, n.Leave(ids[i]))
				ids = append(ids[:i], ids[i+1:]...)
			}
		case 2: // move
			if len(ids) > 0 {
				id := ids[rng.Intn(len(ids))]
				must(t, n.Move(id, geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)}))
			}
		case 3: // range change
			if len(ids) > 0 {
				id := ids[rng.Intn(len(ids))]
				must(t, n.SetRange(id, rng.Uniform(0, 60)))
			}
		}
		if step%20 == 0 {
			must(t, n.CheckConsistency())
		}
	}
	must(t, n.CheckConsistency())
}
