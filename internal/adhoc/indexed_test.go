package adhoc

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestIndexedEquivalence: the grid-backed network produces the identical
// graph, partitions, and consistency state as the naive one under a
// random event stream — the grid is a pure accelerator.
func TestIndexedEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		naive := NewScan()
		indexed := NewIndexed(rng.Uniform(5, 35))
		next := 0
		var present []graph.NodeID
		for step := 0; step < 120; step++ {
			switch k := rng.Intn(8); {
			case k < 3 || len(present) == 0: // join
				cfg := Config{
					Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
					Range: rng.Uniform(1, 45),
				}
				id := graph.NodeID(next)
				next++
				if naive.Join(id, cfg) != nil || indexed.Join(id, cfg) != nil {
					return false
				}
				present = append(present, id)
			case k < 5: // move
				id := present[rng.Intn(len(present))]
				pos := geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)}
				if naive.Move(id, pos) != nil || indexed.Move(id, pos) != nil {
					return false
				}
			case k < 7: // range change
				id := present[rng.Intn(len(present))]
				r := rng.Uniform(0, 50)
				if naive.SetRange(id, r) != nil || indexed.SetRange(id, r) != nil {
					return false
				}
			default: // leave
				i := rng.Intn(len(present))
				id := present[i]
				present = append(present[:i], present[i+1:]...)
				if naive.Leave(id) != nil || indexed.Leave(id) != nil {
					return false
				}
			}
			if !reflect.DeepEqual(naive.Graph().Edges(), indexed.Graph().Edges()) {
				return false
			}
		}
		// Partition equivalence for a hypothetical join.
		cfg := Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(1, 45),
		}
		pn := naive.PartitionFor(999, cfg)
		pi := indexed.PartitionFor(999, cfg)
		if !reflect.DeepEqual(pn, pi) {
			return false
		}
		return indexed.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIndexedCloneKeepsIndex(t *testing.T) {
	n := NewIndexed(20)
	if err := n.Join(1, Config{Pos: geom.Point{X: 5, Y: 5}, Range: 10}); err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	if c.grid == nil {
		t.Fatal("clone lost the spatial index")
	}
	if c.gridCell() != 20 {
		t.Fatalf("clone cell = %g", c.gridCell())
	}
	if err := c.Join(2, Config{Pos: geom.Point{X: 8, Y: 5}, Range: 10}); err != nil {
		t.Fatal(err)
	}
	if !c.Graph().HasEdge(1, 2) || !c.Graph().HasEdge(2, 1) {
		t.Fatal("cloned indexed network missed edges")
	}
	if n.Has(2) {
		t.Fatal("clone mutation leaked")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNewIndexedPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad cell size did not panic")
		}
	}()
	NewIndexed(0)
}

func TestNaiveGridCellIsZero(t *testing.T) {
	if NewScan().gridCell() != 0 {
		t.Fatal("naive network reports a cell size")
	}
}

// TestIndexedMinimalConnectivity matches the naive result.
func TestIndexedMinimalConnectivity(t *testing.T) {
	rng := xrand.New(4)
	naive := NewScan()
	indexed := NewIndexed(25)
	for i := 0; i < 30; i++ {
		cfg := Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(5, 30),
		}
		if err := naive.Join(graph.NodeID(i), cfg); err != nil {
			t.Fatal(err)
		}
		if err := indexed.Join(graph.NodeID(i), cfg); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		cfg := Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(0, 30),
		}
		if naive.MinimalConnectivityOK(99, cfg) != indexed.MinimalConnectivityOK(99, cfg) {
			t.Fatalf("trial %d: connectivity verdicts differ", trial)
		}
	}
}

// BenchmarkJoinNaive/Indexed quantify the accelerator on a dense network.
func benchJoins(b *testing.B, mk func() *Network) {
	rng := xrand.New(77)
	cfgs := make([]Config, 500)
	for i := range cfgs {
		cfgs[i] = Config{
			Pos:   geom.Point{X: rng.Uniform(0, 1000), Y: rng.Uniform(0, 1000)},
			Range: rng.Uniform(20.5, 30.5),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := mk()
		for j, cfg := range cfgs {
			if err := n.Join(graph.NodeID(j), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkJoin500Naive(b *testing.B) { benchJoins(b, New) }
func BenchmarkJoin500Indexed(b *testing.B) {
	benchJoins(b, func() *Network { return NewIndexed(30.5) })
}
