package toca

import (
	"fmt"

	"repro/internal/graph"
)

// Checker maintains the number of CA1/CA2 violations of an assignment
// incrementally under single-node recolor operations, in O(conflict
// degree) per update instead of re-verifying the whole network. It is
// the fast path for long-running monitors (cmd/verify) and for gossip
// sweeps on large networks.
//
// The checker counts violating *pairs* exactly as Verify lists them:
// each directed CA1 edge with equal endpoint colors counts once, and
// each unordered in-neighbor pair with equal colors counts once per
// common receiver.
type Checker struct {
	g      *graph.Digraph
	assign Assignment
	count  int
}

// NewChecker builds a checker over the graph and assignment; both are
// referenced, not copied — the caller must route every color change
// through Recolor and every topology change through Rebuild.
func NewChecker(g *graph.Digraph, assign Assignment) *Checker {
	c := &Checker{g: g, assign: assign}
	c.Rebuild()
	return c
}

// Rebuild recounts violations from scratch (after topology changes).
func (c *Checker) Rebuild() {
	c.count = len(Verify(c.g, c.assign))
}

// Violations returns the current violating-pair count.
func (c *Checker) Violations() int { return c.count }

// Valid reports whether the assignment currently satisfies CA1/CA2.
func (c *Checker) Valid() bool { return c.count == 0 }

// Recolor changes u's color and updates the violation count
// incrementally.
func (c *Checker) Recolor(u graph.NodeID, newColor Color) {
	if !c.g.HasNode(u) {
		panic(fmt.Sprintf("toca: Recolor of absent node %d", u))
	}
	old := c.assign[u]
	if old == newColor {
		return
	}
	c.count -= c.violationsInvolving(u, old)
	c.assign[u] = newColor
	c.count += c.violationsInvolving(u, newColor)
}

// violationsInvolving counts the violating pairs that include node u
// under the hypothetical color col (None contributes nothing).
func (c *Checker) violationsInvolving(u graph.NodeID, col Color) int {
	if col == None {
		return 0
	}
	n := 0
	// CA1: directed edges u->v and v->u with c_v == col. A mutual edge
	// pair (u->v and v->u) yields two violations, matching Verify.
	c.g.ForEachOut(u, func(v graph.NodeID) {
		if c.assign[v] == col && v != u {
			n++
		}
	})
	c.g.ForEachIn(u, func(v graph.NodeID) {
		if c.assign[v] == col && v != u {
			n++
		}
	})
	// CA2: for each receiver w that u transmits to, other in-neighbors x
	// of w with c_x == col. Each (u, x, w) triple counts once, matching
	// Verify's per-receiver unordered-pair enumeration.
	c.g.ForEachOut(u, func(w graph.NodeID) {
		c.g.ForEachIn(w, func(x graph.NodeID) {
			if x != u && c.assign[x] == col {
				n++
			}
		})
	})
	return n
}
