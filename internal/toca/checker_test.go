package toca

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestCheckerMatchesVerify: under random recolor sequences, the
// incremental count always equals len(Verify(...)).
func TestCheckerMatchesVerify(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomDigraph(rng.Uint64(), 4+rng.Intn(12), 40)
		a := make(Assignment)
		for _, id := range g.Nodes() {
			if rng.Bool() {
				a[id] = Color(1 + rng.Intn(4))
			}
		}
		c := NewChecker(g, a)
		if c.Violations() != len(Verify(g, a)) {
			return false
		}
		nodes := g.Nodes()
		for step := 0; step < 60; step++ {
			u := nodes[rng.Intn(len(nodes))]
			c.Recolor(u, Color(rng.Intn(5))) // 0 = None allowed
			if c.Violations() != len(Verify(g, a)) {
				return false
			}
			if c.Valid() != (len(Verify(g, a)) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCheckerRecolorNoop(t *testing.T) {
	g := randomDigraph(3, 6, 12)
	a := Assignment{}
	for _, id := range g.Nodes() {
		a[id] = 1
	}
	c := NewChecker(g, a)
	before := c.Violations()
	c.Recolor(g.Nodes()[0], a[g.Nodes()[0]]) // same color
	if c.Violations() != before {
		t.Fatal("no-op recolor changed the count")
	}
}

func TestCheckerRebuildAfterTopologyChange(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	g.AddNode(2)
	a := Assignment{1: 1, 2: 1}
	c := NewChecker(g, a)
	if c.Violations() != 0 {
		t.Fatal("disconnected equal colors flagged")
	}
	g.AddEdge(1, 2)
	c.Rebuild()
	if c.Violations() != 1 {
		t.Fatalf("violations = %d after edge insert", c.Violations())
	}
	c.Recolor(2, 2)
	if !c.Valid() {
		t.Fatal("fix not detected")
	}
}

func TestCheckerPanicsOnAbsentNode(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	c := NewChecker(g, Assignment{})
	defer func() {
		if recover() == nil {
			t.Fatal("recolor of absent node did not panic")
		}
	}()
	c.Recolor(99, 1)
}

// TestCheckerHiddenPairAccounting: the CA2 triple accounting matches
// Verify on the canonical star.
func TestCheckerHiddenPairAccounting(t *testing.T) {
	g := starGraph(4) // 1..4 -> 0
	a := Assignment{0: 9, 1: 1, 2: 1, 3: 1, 4: 2}
	c := NewChecker(g, a)
	// Pairs (1,2),(1,3),(2,3) = 3 violations.
	if c.Violations() != 3 {
		t.Fatalf("violations = %d, want 3", c.Violations())
	}
	c.Recolor(3, 2)
	// Now (1,2) and (3,4): 2 violations.
	if c.Violations() != 2 {
		t.Fatalf("violations = %d, want 2", c.Violations())
	}
	c.Recolor(3, 3)
	c.Recolor(2, 4)
	// (1,?) none; 4 holds 2, 2 holds 4, 3 holds 3: 0 violations... but
	// 2 holds 4 and 4 holds 2 — distinct. Check zero.
	if c.Violations() != 0 {
		t.Fatalf("violations = %d, want 0", c.Violations())
	}
}
