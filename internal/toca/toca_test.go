package toca

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// starGraph returns a digraph where nodes 1..k all transmit to node 0.
func starGraph(k int) *graph.Digraph {
	g := graph.New()
	g.AddNode(0)
	for i := 1; i <= k; i++ {
		g.AddNode(graph.NodeID(i))
		g.AddEdge(graph.NodeID(i), 0)
	}
	return g
}

func TestVerifyCA1(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	g.AddNode(2)
	g.AddEdge(1, 2)
	a := Assignment{1: 5, 2: 5}
	vs := Verify(g, a)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	v := vs[0]
	if v.Kind != Primary || v.U != 1 || v.V != 2 || v.Color != 5 {
		t.Fatalf("violation = %+v", v)
	}
	a[2] = 6
	if !Valid(g, a) {
		t.Fatal("distinct colors still flagged")
	}
}

func TestVerifyCA2(t *testing.T) {
	g := starGraph(3)
	a := Assignment{0: 1, 1: 2, 2: 2, 3: 3}
	vs := Verify(g, a)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	v := vs[0]
	if v.Kind != Hidden || v.At != 0 || v.Color != 2 {
		t.Fatalf("violation = %+v", v)
	}
	if v.U != 1 || v.V != 2 {
		t.Fatalf("violating pair = %d,%d", v.U, v.V)
	}
}

func TestVerifyUnassignedSilent(t *testing.T) {
	g := starGraph(2)
	// Node 2 unassigned: no violations even though node 1 shares "None".
	a := Assignment{0: 1, 1: 2}
	if !Valid(g, a) {
		t.Fatalf("unassigned node caused violations: %v", Verify(g, a))
	}
}

func TestViolationStrings(t *testing.T) {
	p := Violation{Kind: Primary, U: 1, V: 2, At: 2, Color: 3}
	if p.String() != "CA1: edge 1->2 both color 3" {
		t.Fatalf("Primary string = %q", p.String())
	}
	h := Violation{Kind: Hidden, U: 1, V: 2, At: 9, Color: 4}
	if h.String() != "CA2: in-neighbors 1,2 of 9 both color 4" {
		t.Fatalf("Hidden string = %q", h.String())
	}
	if Primary.String() != "CA1" || Hidden.String() != "CA2" {
		t.Fatal("kind strings wrong")
	}
	if ViolationKind(9).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestConflictNeighbors(t *testing.T) {
	// 1 -> 3 <- 2, plus 4 -> 1.
	g := graph.New()
	for i := 1; i <= 4; i++ {
		g.AddNode(graph.NodeID(i))
	}
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(4, 1)
	got := ConflictNeighborsSorted(g, 1)
	// 3 via CA1 (out-neighbor), 2 via CA2 (co-transmitter at 3), 4 via
	// CA1 (in-neighbor).
	want := []graph.NodeID{2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ConflictNeighbors(1) = %v, want %v", got, want)
	}
	// Node 3 only hears; its conflicts are its in-neighbors by CA1.
	got = ConflictNeighborsSorted(g, 3)
	want = []graph.NodeID{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ConflictNeighbors(3) = %v, want %v", got, want)
	}
}

func TestConflictNeighborsSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomDigraph(seed, 12, 30)
		for _, u := range g.Nodes() {
			for v := range ConflictNeighbors(g, u) {
				if _, ok := ConflictNeighbors(g, v)[u]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConflictGraphSymmetricAndComplete(t *testing.T) {
	g := randomDigraph(99, 15, 40)
	adj := ConflictGraph(g)
	if len(adj) != g.NumNodes() {
		t.Fatalf("conflict graph has %d vertices, want %d", len(adj), g.NumNodes())
	}
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if !containsID(adj[v], u) {
				t.Fatalf("conflict graph asymmetric at %d~%d", u, v)
			}
			if u == v {
				t.Fatalf("self loop at %d", u)
			}
		}
	}
	// Every CA1/CA2 pair must be an edge of the conflict graph.
	for _, u := range g.Nodes() {
		for v := range ConflictNeighbors(g, u) {
			if !containsID(adj[u], v) {
				t.Fatalf("conflict pair %d~%d missing", u, v)
			}
		}
	}
}

// TestConflictGraphColoringEquivalence: an assignment is CA1/CA2-valid
// iff it is a proper coloring of the conflict graph.
func TestConflictGraphColoringEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomDigraph(rng.Uint64(), 10, 25)
		adj := ConflictGraph(g)
		a := make(Assignment)
		for _, id := range g.Nodes() {
			a[id] = Color(1 + rng.Intn(4))
		}
		valid := Valid(g, a)
		proper := true
		for u, nbrs := range adj {
			for _, v := range nbrs {
				if a[u] == a[v] {
					proper = false
				}
			}
		}
		return valid == proper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestForbidden(t *testing.T) {
	g := starGraph(3) // 1,2,3 -> 0
	a := Assignment{0: 7, 1: 1, 2: 2, 3: 3}
	// Node 1's constraints: 0 (CA1 out-neighbor), 2 and 3 (CA2).
	forb := Forbidden(g, a, 1, nil)
	want := []Color{2, 3, 7}
	if !reflect.DeepEqual(forb.Sorted(), want) {
		t.Fatalf("Forbidden = %v, want %v", forb.Sorted(), want)
	}
	// Excluding node 2 drops its color from the constraints.
	excl := map[graph.NodeID]struct{}{2: {}}
	forb = Forbidden(g, a, 1, excl)
	want = []Color{3, 7}
	if !reflect.DeepEqual(forb.Sorted(), want) {
		t.Fatalf("Forbidden(excl 2) = %v, want %v", forb.Sorted(), want)
	}
}

// TestForbiddenAllDifferential: on random graphs, the shared-receiver
// one-pass construction produces EXACTLY the per-member Forbidden sets
// computed the slow way with an exclude map — the recoder swaps one for
// the other, and its outcomes must stay bit-identical.
func TestForbiddenAllDifferential(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 200; trial++ {
		g := randomDigraph(rng.Uint64(), 2+rng.Intn(14), rng.Intn(60))
		nodes := g.Nodes()
		a := make(Assignment)
		for _, id := range nodes {
			if rng.Float64() < 0.8 {
				a[id] = Color(1 + rng.Intn(5))
			}
		}
		var v1 []graph.NodeID
		excl := make(map[graph.NodeID]struct{})
		for _, id := range nodes {
			if rng.Float64() < 0.4 {
				v1 = append(v1, id)
				excl[id] = struct{}{}
			}
		}
		// ForbiddenAll's precondition: members' colors lifted out.
		lifted := a.Clone()
		for _, u := range v1 {
			delete(lifted, u)
		}
		all := ForbiddenAll(g, lifted, v1)
		for _, u := range v1 {
			want := Forbidden(g, a, u, excl)
			got := all[u]
			if !reflect.DeepEqual(got.Sorted(), want.Sorted()) {
				t.Fatalf("trial %d node %d: ForbiddenAll %v, want %v",
					trial, u, got.Sorted(), want.Sorted())
			}
			if got.Len() != want.Len() || got.Max() != want.Max() || got.LowestFree() != want.LowestFree() {
				t.Fatalf("trial %d node %d: set stats diverge: %d/%d/%d vs %d/%d/%d",
					trial, u, got.Len(), got.Max(), got.LowestFree(),
					want.Len(), want.Max(), want.LowestFree())
			}
		}
	}
}

// TestColorSetUnionWith: word growth, count/max bookkeeping, overlap.
func TestColorSetUnionWith(t *testing.T) {
	s := NewColorSet()
	s.Add(1)
	s.Add(3)
	o := NewColorSet()
	o.Add(3)   // overlap: must not double-count
	o.Add(70)  // second word: s must grow
	o.Add(130) // third word
	s.UnionWith(o)
	if got := s.Sorted(); !reflect.DeepEqual(got, []Color{1, 3, 70, 130}) {
		t.Fatalf("Sorted = %v", got)
	}
	if s.Len() != 4 || s.Max() != 130 {
		t.Fatalf("Len/Max = %d/%d, want 4/130", s.Len(), s.Max())
	}
	s.UnionWith(NewColorSet()) // empty o: no-op
	s.UnionWith(ColorSet{})    // zero-value o: no-op
	if s.Len() != 4 {
		t.Fatalf("Len after empty unions = %d", s.Len())
	}
}

// TestColorSetForEach: ForEach visits exactly Sorted's colors in order.
func TestColorSetForEach(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		s := NewColorSet()
		for i := 0; i < rng.Intn(30); i++ {
			s.Add(Color(1 + rng.Intn(200)))
		}
		got := make([]Color, 0, s.Len())
		s.ForEach(func(c Color) { got = append(got, c) })
		if !reflect.DeepEqual(got, s.Sorted()) {
			t.Fatalf("trial %d: ForEach %v, Sorted %v", trial, got, s.Sorted())
		}
	}
	(ColorSet{}).ForEach(func(Color) { t.Fatal("zero-value set visited a color") })
}

func TestColorSet(t *testing.T) {
	s := NewColorSet()
	s.Add(None) // ignored
	s.Add(3)
	s.Add(1)
	s.Add(3) // dup
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(1) || s.Has(2) {
		t.Fatal("Has wrong")
	}
	if s.Max() != 3 {
		t.Fatalf("Max = %d", s.Max())
	}
	if got := s.Sorted(); !reflect.DeepEqual(got, []Color{1, 3}) {
		t.Fatalf("Sorted = %v", got)
	}
	if s.LowestFree() != 2 {
		t.Fatalf("LowestFree = %d", s.LowestFree())
	}
	s.Add(2)
	if s.LowestFree() != 4 {
		t.Fatalf("LowestFree = %d", s.LowestFree())
	}
	if (ColorSet{}).Max() != None {
		t.Fatal("empty Max != None")
	}
	if (ColorSet{}).LowestFree() != 1 {
		t.Fatal("empty LowestFree != 1")
	}
	// Word-boundary behavior: a fully packed first word rolls LowestFree
	// into the second.
	full := NewColorSet()
	for c := Color(1); c <= 64; c++ {
		full.Add(c)
	}
	if full.LowestFree() != 65 {
		t.Fatalf("packed LowestFree = %d, want 65", full.LowestFree())
	}
	full.Add(66)
	if full.LowestFree() != 65 {
		t.Fatalf("LowestFree with gap = %d, want 65", full.LowestFree())
	}
	if full.Max() != 66 || full.Len() != 65 {
		t.Fatalf("Max/Len = %d/%d, want 66/65", full.Max(), full.Len())
	}
	if got := full.Sorted(); got[len(got)-1] != 66 || len(got) != 65 {
		t.Fatalf("Sorted tail = %v", got[len(got)-5:])
	}
	// Clear keeps the set usable.
	full.Clear()
	if full.Len() != 0 || full.Max() != None || full.LowestFree() != 1 {
		t.Fatal("Clear did not empty the set")
	}
	full.Add(2)
	if !full.Has(2) || full.Has(1) {
		t.Fatal("post-Clear Add broken")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := Assignment{1: 2, 2: 2, 3: 5}
	if a.MaxColor() != 5 {
		t.Fatalf("MaxColor = %d", a.MaxColor())
	}
	if (Assignment{}).MaxColor() != None {
		t.Fatal("empty MaxColor != None")
	}
	counts := a.ColorCounts()
	if counts[2] != 2 || counts[5] != 1 || len(counts) != 2 {
		t.Fatalf("ColorCounts = %v", counts)
	}
	c := a.Clone()
	c[1] = 9
	if a[1] != 2 {
		t.Fatal("Clone aliased")
	}
}

func TestDiffCount(t *testing.T) {
	before := Assignment{1: 1, 2: 2, 3: 3}
	after := Assignment{1: 1, 2: 9, 4: 4}
	// 2 changed, 4 is new (counts), 3 left (does not count), 1 same.
	if got := DiffCount(before, after); got != 2 {
		t.Fatalf("DiffCount = %d, want 2", got)
	}
	if got := DiffCount(nil, Assignment{7: 1}); got != 1 {
		t.Fatalf("DiffCount from nil = %d, want 1", got)
	}
	if got := DiffCount(before, nil); got != 0 {
		t.Fatalf("DiffCount to nil = %d, want 0", got)
	}
}

func TestVerifyDeterministic(t *testing.T) {
	g := randomDigraph(5, 10, 30)
	a := make(Assignment)
	for _, id := range g.Nodes() {
		a[id] = 1 // everything collides
	}
	v1 := Verify(g, a)
	v2 := Verify(g, a)
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("Verify not deterministic")
	}
	if len(v1) == 0 {
		t.Fatal("all-same coloring reported no violations")
	}
}

// randomDigraph builds a random digraph with n nodes and ~m edge draws.
func randomDigraph(seed uint64, n, m int) *graph.Digraph {
	rng := xrand.New(seed)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	for e := 0; e < m; e++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}
