// Package toca implements the transmitter-oriented code assignment
// (TOCA) constraint model of the paper's section 2.
//
// An assignment of positive integer codes ("colors") to nodes is valid
// when it satisfies:
//
//	CA1 (primary):  for every edge (u, v), c_u != c_v
//	CA2 (hidden):   for every pair of edges (u, w), (v, w) with u != v,
//	                c_u != c_v
//
// Equivalently, the assignment is a proper coloring of the conflict graph
// C(G) in which u ~ v iff u->v, v->u, or u and v share an out-neighbor.
package toca

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// Color is a CDMA code index. Valid codes are positive; None marks an
// unassigned node.
type Color int

// None is the zero Color, meaning "no code assigned".
const None Color = 0

// Assignment maps nodes to codes.
type Assignment map[graph.NodeID]Color

// Set writes one node's code; None removes the entry (assignments
// never store explicit None). This is the single write convention every
// externally mutable assignment holder shares.
func (a Assignment) Set(id graph.NodeID, c Color) {
	if c == None {
		delete(a, id)
		return
	}
	a[id] = c
}

// Clone returns a deep copy of a.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for id, col := range a {
		c[id] = col
	}
	return c
}

// MaxColor returns the largest color in use, or None for an empty or
// fully unassigned map.
func (a Assignment) MaxColor() Color {
	max := None
	for _, c := range a {
		if c > max {
			max = c
		}
	}
	return max
}

// ColorCounts returns, for each color in use, the number of nodes holding
// it. Unassigned nodes are skipped.
func (a Assignment) ColorCounts() map[Color]int {
	counts := make(map[Color]int)
	for _, c := range a {
		if c != None {
			counts[c]++
		}
	}
	return counts
}

// DiffCount returns the paper's "number of recodings" between two
// snapshots: the number of nodes in after whose color differs from their
// color in before, where a node absent from before counts as None. A node
// receiving its first color therefore counts as one recoding (the paper
// counts the joiner), while nodes that left the network do not.
func DiffCount(before, after Assignment) int {
	n := 0
	for id, c := range after {
		if before[id] != c {
			n++
		}
	}
	return n
}

// ViolationKind distinguishes CA1 from CA2 violations.
type ViolationKind int

// Violation kinds.
const (
	Primary ViolationKind = iota + 1 // CA1: edge endpoints share a color
	Hidden                           // CA2: two in-neighbors of a node share a color
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case Primary:
		return "CA1"
	case Hidden:
		return "CA2"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation describes a single constraint violation. For Primary, U->V is
// the offending edge. For Hidden, U and V are distinct in-neighbors of
// At sharing a color.
type Violation struct {
	Kind  ViolationKind
	U, V  graph.NodeID
	At    graph.NodeID // receiver where the collision occurs (Hidden only; equals V for Primary)
	Color Color
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Kind == Primary {
		return fmt.Sprintf("CA1: edge %d->%d both color %d", v.U, v.V, v.Color)
	}
	return fmt.Sprintf("CA2: in-neighbors %d,%d of %d both color %d", v.U, v.V, v.At, v.Color)
}

// Verify returns every CA1/CA2 violation of the assignment on g. Nodes
// with no assigned color violate neither condition (they are treated as
// silent). The result is deterministic (sorted by node IDs).
func Verify(g *graph.Digraph, a Assignment) []Violation {
	var out []Violation
	for _, u := range g.Nodes() {
		cu := a[u]
		if cu == None {
			continue
		}
		for _, v := range g.OutNeighbors(u) {
			if a[v] == cu {
				out = append(out, Violation{Kind: Primary, U: u, V: v, At: v, Color: cu})
			}
		}
	}
	for _, w := range g.Nodes() {
		ins := g.InNeighbors(w)
		for i := 0; i < len(ins); i++ {
			ci := a[ins[i]]
			if ci == None {
				continue
			}
			for j := i + 1; j < len(ins); j++ {
				if a[ins[j]] == ci {
					out = append(out, Violation{Kind: Hidden, U: ins[i], V: ins[j], At: w, Color: ci})
				}
			}
		}
	}
	return out
}

// Valid reports whether the assignment satisfies CA1 and CA2 on g.
func Valid(g *graph.Digraph, a Assignment) bool {
	return len(Verify(g, a)) == 0
}

// ConflictNeighbors returns the set of nodes whose color must differ from
// u's under CA1/CA2: u's out-neighbors, u's in-neighbors, and every other
// in-neighbor of each of u's out-neighbors ("co-transmitters").
func ConflictNeighbors(g *graph.Digraph, u graph.NodeID) map[graph.NodeID]struct{} {
	set := make(map[graph.NodeID]struct{})
	g.ForEachOut(u, func(v graph.NodeID) {
		set[v] = struct{}{} // CA1 on u->v
		g.ForEachIn(v, func(x graph.NodeID) {
			if x != u {
				set[x] = struct{}{} // CA2 at v
			}
		})
	})
	g.ForEachIn(u, func(v graph.NodeID) {
		set[v] = struct{}{} // CA1 on v->u
	})
	return set
}

// ConflictNeighborsSorted is ConflictNeighbors with a deterministic
// sorted-slice result, for protocol messages and tests.
func ConflictNeighborsSorted(g *graph.Digraph, u graph.NodeID) []graph.NodeID {
	set := ConflictNeighbors(g, u)
	out := make([]graph.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConflictGraph materializes C(G) as an undirected adjacency map. The
// coloring heuristics (BBB substrate) color this graph directly.
func ConflictGraph(g *graph.Digraph) map[graph.NodeID][]graph.NodeID {
	return ConflictGraphFrom(g.Nodes(), func(u graph.NodeID) map[graph.NodeID]struct{} {
		return ConflictNeighbors(g, u)
	})
}

// ConflictGraphFrom builds the symmetrized conflict adjacency from a
// per-node conflict-set source. It lets callers substitute a cached
// source (adhoc.Network.ConflictNeighbors) for the direct recompute;
// the sets are read, never mutated.
func ConflictGraphFrom(nodes []graph.NodeID, sets func(graph.NodeID) map[graph.NodeID]struct{}) map[graph.NodeID][]graph.NodeID {
	adj := make(map[graph.NodeID][]graph.NodeID, len(nodes))
	for _, u := range nodes {
		set := sets(u)
		lst := make([]graph.NodeID, 0, len(set))
		for id := range set {
			lst = append(lst, id)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		adj[u] = lst
	}
	// Symmetrize: v in adj[u] must imply u in adj[v]. CA1 on a one-way
	// edge u->v constrains both endpoints' colors mutually, and CA2 is
	// symmetric by construction, so take the union.
	for u, lst := range adj {
		for _, v := range lst {
			if !containsID(adj[v], u) {
				adj[v] = insertSortedID(adj[v], u)
			}
		}
	}
	return adj
}

func containsID(s []graph.NodeID, id graph.NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

func insertSortedID(s []graph.NodeID, id graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// ColorSet is a set of colors, used for forbidden/constraint sets. It is
// backed by a bitmap rather than a hash map: color indices are small
// dense positive integers (bounded by the running max color index), so
// membership is one bit test and insertion one bit set — the dominant
// cost of the Forbidden constraint walk, which revisits each
// co-transmitter once per shared receiver. Construct with NewColorSet;
// the zero value is a valid empty read-only set.
type ColorSet struct {
	b *colorBits
}

// colorBits is the shared backing store: color c occupies bit c-1 of
// words. Sets only grow (Clear resets in place), so max and n are
// maintained incrementally.
type colorBits struct {
	words []uint64
	n     int   // number of distinct colors present
	max   Color // largest color present, None when empty
}

// NewColorSet returns an empty mutable color set.
func NewColorSet() ColorSet {
	return ColorSet{b: &colorBits{}}
}

// Add inserts c (None is ignored). The set must have been created with
// NewColorSet; Add on a zero-value ColorSet panics, matching the old
// map-backed behavior of inserting into a nil map.
func (s ColorSet) Add(c Color) {
	if c <= None {
		return
	}
	w, bit := int(c-1)>>6, uint(c-1)&63
	for w >= len(s.b.words) {
		s.b.words = append(s.b.words, 0)
	}
	if s.b.words[w]&(1<<bit) == 0 {
		s.b.words[w] |= 1 << bit
		s.b.n++
		if c > s.b.max {
			s.b.max = c
		}
	}
}

// Has reports whether c is in the set.
func (s ColorSet) Has(c Color) bool {
	if s.b == nil || c <= None {
		return false
	}
	w := int(c-1) >> 6
	return w < len(s.b.words) && s.b.words[w]&(1<<(uint(c-1)&63)) != 0
}

// Len returns the number of colors in the set.
func (s ColorSet) Len() int {
	if s.b == nil {
		return 0
	}
	return s.b.n
}

// Clear empties the set in place, keeping its capacity.
func (s ColorSet) Clear() {
	if s.b == nil {
		return
	}
	for i := range s.b.words {
		s.b.words[i] = 0
	}
	s.b.n = 0
	s.b.max = None
}

// Max returns the largest color in the set, or None if empty.
func (s ColorSet) Max() Color {
	if s.b == nil {
		return None
	}
	return s.b.max
}

// Sorted returns the set's colors ascending.
func (s ColorSet) Sorted() []Color {
	if s.b == nil {
		return nil
	}
	out := make([]Color, 0, s.b.n)
	for w, word := range s.b.words {
		for ; word != 0; word &= word - 1 {
			out = append(out, Color(w<<6+bits.TrailingZeros64(word)+1))
		}
	}
	return out
}

// UnionWith adds every color of o to s — a word-wise OR, far cheaper
// than re-walking the nodes that produced o. The set must have been
// created with NewColorSet.
func (s ColorSet) UnionWith(o ColorSet) {
	if o.b == nil || o.b.n == 0 {
		return
	}
	for len(s.b.words) < len(o.b.words) {
		s.b.words = append(s.b.words, 0)
	}
	for i, w := range o.b.words {
		if add := w &^ s.b.words[i]; add != 0 {
			s.b.words[i] |= add
			s.b.n += bits.OnesCount64(add)
		}
	}
	if o.b.max > s.b.max {
		s.b.max = o.b.max
	}
}

// ForEach calls fn for every color in the set in ascending order. It is
// Sorted without the allocation — the recoding hot path walks each
// member's forbidden set once per event, and the sets are sparse
// relative to the color range, so iterating set bits beats scanning
// every color for membership.
func (s ColorSet) ForEach(fn func(Color)) {
	if s.b == nil {
		return
	}
	for w, word := range s.b.words {
		for ; word != 0; word &= word - 1 {
			fn(Color(w<<6 + bits.TrailingZeros64(word) + 1))
		}
	}
}

// LowestFree returns the smallest positive color not in the set — the
// "lowest available color" rule used by CP and RecodeOnPowIncrease.
func (s ColorSet) LowestFree() Color {
	if s.b == nil {
		return 1
	}
	for w, word := range s.b.words {
		if word != math.MaxUint64 {
			return Color(w<<6 + bits.TrailingZeros64(^word) + 1)
		}
	}
	return Color(len(s.b.words)<<6 + 1)
}

// Forbidden returns the colors node u may not take, considering only
// constraining nodes outside the exclude set (whose colors are about to
// be reassigned and therefore do not constrain u through their old
// values). Pass a nil exclude map to consider every constraining node.
//
// The constraint walk is fused: instead of materializing the conflict
// neighborhood as a node set first (the profile's dominant allocation on
// the recoding hot path), colors are folded directly into the result.
// Revisiting a co-transmitter through several shared receivers is
// harmless — ColorSet.Add is idempotent.
func Forbidden(g *graph.Digraph, a Assignment, u graph.NodeID, exclude map[graph.NodeID]struct{}) ColorSet {
	set := NewColorSet()
	add := func(v graph.NodeID) {
		if exclude != nil {
			if _, skip := exclude[v]; skip {
				return
			}
		}
		set.Add(a[v])
	}
	g.ForEachOut(u, func(v graph.NodeID) {
		add(v) // CA1 on u->v
		g.ForEachIn(v, func(x graph.NodeID) {
			if x != u {
				add(x) // CA2 at v
			}
		})
	})
	g.ForEachIn(u, add) // CA1 on v->u
	return set
}

// ForbiddenAll computes Forbidden for every member of v1 in one pass.
// Callers must first lift the members' colors out of the assignment
// (every u in v1 unassigned in a), which is how the recoding uses it:
// members' old colors are about to be reassigned and must not constrain
// each other. That precondition is what makes the sharing sound — the
// CA2 constraint set of a receiver w (the colors of w's in-neighbors)
// no longer depends on WHICH member is asking, so each receiver's
// in-neighbor walk runs once and is folded into every member that
// transmits to w with a word-wise union, instead of being re-walked per
// member (the k² half of the per-event constraint cost; members of a
// join neighborhood share most of their receivers).
func ForbiddenAll(g *graph.Digraph, a Assignment, v1 []graph.NodeID) map[graph.NodeID]ColorSet {
	recv := make(map[graph.NodeID]ColorSet) // receiver -> in-neighbor colors
	out := make(map[graph.NodeID]ColorSet, len(v1))
	for _, u := range v1 {
		set := NewColorSet()
		g.ForEachOut(u, func(v graph.NodeID) {
			set.Add(a[v]) // CA1 on u->v
			rs, ok := recv[v]
			if !ok {
				rs = NewColorSet()
				g.ForEachIn(v, func(x graph.NodeID) { rs.Add(a[x]) })
				recv[v] = rs
			}
			set.UnionWith(rs) // CA2 at v (u's own lifted color adds None)
		})
		g.ForEachIn(u, func(v graph.NodeID) { set.Add(a[v]) }) // CA1 on v->u
		out[u] = set
	}
	return out
}
