// Package geom provides the 2-D geometry primitives used by the ad-hoc
// network model: points, distances, displacement vectors, and the
// rectangular arena the paper's simulations run in (100 x 100 units).
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the 2-D plane.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// DistanceTo returns the Euclidean distance between p and q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistanceSqTo returns the squared Euclidean distance between p and q.
// It avoids the square root for range comparisons.
func (p Point) DistanceSqTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point {
	return Point{p.X + v.DX, p.Y + v.DY}
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector {
	return Vector{p.X - q.X, p.Y - q.Y}
}

// Vector is a displacement in the 2-D plane.
type Vector struct {
	DX, DY float64
}

// Length returns the Euclidean length of v.
func (v Vector) Length() float64 {
	return math.Hypot(v.DX, v.DY)
}

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector {
	return Vector{v.DX * s, v.DY * s}
}

// Polar returns the displacement of the given length in the given
// direction (radians, counterclockwise from the positive X axis).
func Polar(length, angle float64) Vector {
	return Vector{length * math.Cos(angle), length * math.Sin(angle)}
}

// Rect is an axis-aligned rectangle, used as the simulation arena.
type Rect struct {
	Min, Max Point
}

// Arena returns the paper's simulation arena: a w x h rectangle anchored
// at the origin.
func Arena(w, h float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{w, h}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (inclusive of the border).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Diagonal returns the length of r's diagonal, an upper bound on any
// distance between two points inside r.
func (r Rect) Diagonal() float64 {
	return r.Min.DistanceTo(r.Max)
}
