package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistanceTo(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 5}, 4},
		{Point{-3, -4}, Point{0, 0}, 5},
		{Point{2.5, 0}, Point{-2.5, 0}, 5},
	}
	for _, c := range cases {
		if got := c.p.DistanceTo(c.q); !almostEqual(got, c.want) {
			t.Errorf("DistanceTo(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e9)
		}
		p, q := Point{clamp(ax), clamp(ay)}, Point{clamp(bx), clamp(by)}
		return almostEqual(p.DistanceTo(q), q.DistanceTo(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceSqMatchesDistance(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Clamp magnitudes to avoid overflow to +Inf under squaring.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		p := Point{clamp(ax), clamp(ay)}
		q := Point{clamp(bx), clamp(by)}
		d := p.DistanceTo(q)
		return math.Abs(p.DistanceSqTo(q)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSub(t *testing.T) {
	p := Point{1, 2}
	v := Vector{3, -1}
	q := p.Add(v)
	if q != (Point{4, 1}) {
		t.Fatalf("Add = %v, want (4,1)", q)
	}
	back := q.Sub(p)
	if !almostEqual(back.DX, v.DX) || !almostEqual(back.DY, v.DY) {
		t.Fatalf("Sub = %v, want %v", back, v)
	}
}

func TestPolar(t *testing.T) {
	v := Polar(2, 0)
	if !almostEqual(v.DX, 2) || !almostEqual(v.DY, 0) {
		t.Errorf("Polar(2,0) = %v", v)
	}
	v = Polar(2, math.Pi/2)
	if !almostEqual(v.DX, 0) || !almostEqual(v.DY, 2) {
		t.Errorf("Polar(2,pi/2) = %v", v)
	}
	if !almostEqual(Polar(3.5, 1.234).Length(), 3.5) {
		t.Errorf("Polar length mismatch")
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, -2}.Scale(-3)
	if v != (Vector{-3, 6}) {
		t.Fatalf("Scale = %v", v)
	}
}

func TestArenaContainsClamp(t *testing.T) {
	r := Arena(100, 100)
	if r.Width() != 100 || r.Height() != 100 {
		t.Fatalf("Arena dims = %g x %g", r.Width(), r.Height())
	}
	inside := []Point{{0, 0}, {100, 100}, {50, 50}, {0, 100}}
	for _, p := range inside {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	outside := []Point{{-1, 0}, {0, -1}, {101, 50}, {50, 100.5}}
	for _, p := range outside {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
	for _, p := range append(inside, outside...) {
		c := r.Clamp(p)
		if !r.Contains(c) {
			t.Errorf("Clamp(%v) = %v not contained", p, c)
		}
	}
	if got := r.Clamp(Point{-5, 120}); got != (Point{0, 100}) {
		t.Errorf("Clamp(-5,120) = %v, want (0,100)", got)
	}
}

func TestClampIdempotent(t *testing.T) {
	r := Arena(100, 100)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		c := r.Clamp(Point{x, y})
		return r.Clamp(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiagonal(t *testing.T) {
	if d := Arena(3, 4).Diagonal(); !almostEqual(d, 5) {
		t.Fatalf("Diagonal = %g, want 5", d)
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{1, 2}).String(); s != "(1.000, 2.000)" {
		t.Fatalf("String = %q", s)
	}
}
