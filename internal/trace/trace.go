// Package trace serializes event scripts (scenarios) to and from JSON so
// that simulations are replayable artifacts: a randomized workload can be
// saved once and re-fed byte-identically to any strategy, across
// machines and Go versions.
//
// The format is a single JSON object with a version tag and a flat event
// list; unknown versions and malformed events are rejected loudly.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/adhoc"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/strategy"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// file is the on-disk envelope.
type file struct {
	Version int           `json:"version"`
	Name    string        `json:"name,omitempty"`
	Events  []EventRecord `json:"events"`
}

// EventRecord is the serialized form of one strategy.Event. It is shared
// by script files, WAL records (package serve), and the session-service
// HTTP API, so every surface speaks the same event vocabulary.
type EventRecord struct {
	Kind  string  `json:"kind"` // "join", "leave", "move", "power"
	ID    int     `json:"id"`
	X     float64 `json:"x,omitempty"`
	Y     float64 `json:"y,omitempty"`
	Range float64 `json:"range,omitempty"`
}

// Save writes a named event script to w.
func Save(w io.Writer, name string, events []strategy.Event) error {
	f := file{Version: FormatVersion, Name: name}
	for i, ev := range events {
		ej, err := EncodeEvent(ev)
		if err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		f.Events = append(f.Events, ej)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Load reads an event script from r.
func Load(r io.Reader) (name string, events []strategy.Event, err error) {
	var f file
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return "", nil, fmt.Errorf("trace: %w", err)
	}
	if f.Version != FormatVersion {
		return "", nil, fmt.Errorf("trace: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	for i, ej := range f.Events {
		ev, err := DecodeEvent(ej)
		if err != nil {
			return "", nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		events = append(events, ev)
	}
	return f.Name, events, nil
}

// EncodeEvent serializes one event into its wire record.
func EncodeEvent(ev strategy.Event) (EventRecord, error) {
	ej := EventRecord{ID: int(ev.ID)}
	switch ev.Kind {
	case strategy.Join:
		ej.Kind = "join"
		ej.X, ej.Y, ej.Range = ev.Cfg.Pos.X, ev.Cfg.Pos.Y, ev.Cfg.Range
	case strategy.Leave:
		ej.Kind = "leave"
	case strategy.Move:
		ej.Kind = "move"
		ej.X, ej.Y = ev.Pos.X, ev.Pos.Y
	case strategy.PowerChange:
		ej.Kind = "power"
		ej.Range = ev.R
	default:
		return ej, fmt.Errorf("unknown event kind %v", ev.Kind)
	}
	return ej, nil
}

// DecodeEvent parses one wire record back into an event, rejecting
// malformed records loudly.
func DecodeEvent(ej EventRecord) (strategy.Event, error) {
	id := graph.NodeID(ej.ID)
	switch ej.Kind {
	case "join":
		if ej.Range < 0 {
			return strategy.Event{}, fmt.Errorf("join of %d with negative range %g", ej.ID, ej.Range)
		}
		return strategy.JoinEvent(id, adhoc.Config{
			Pos:   geom.Point{X: ej.X, Y: ej.Y},
			Range: ej.Range,
		}), nil
	case "leave":
		return strategy.LeaveEvent(id), nil
	case "move":
		return strategy.MoveEvent(id, geom.Point{X: ej.X, Y: ej.Y}), nil
	case "power":
		if ej.Range < 0 {
			return strategy.Event{}, fmt.Errorf("power of %d with negative range %g", ej.ID, ej.Range)
		}
		return strategy.PowerEvent(id, ej.Range), nil
	default:
		return strategy.Event{}, fmt.Errorf("unknown event kind %q", ej.Kind)
	}
}
