package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/adhoc"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/toca"
)

// snapshotFixture drives a short session and captures its state.
func snapshotFixture(t *testing.T) (Snapshot, *sim.EngineSession) {
	t.Helper()
	sess, err := sim.NewEngineSession([]sim.StrategyName{sim.Minim, sim.CP}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Apply(sampleScript()); err != nil {
		t.Fatal(err)
	}
	names := []string{"Minim", "CP"}
	assigns := make([]toca.Assignment, len(names))
	metrics := make([]*strategy.Metrics, len(names))
	for i, n := range names {
		st, _ := sess.StrategyOf(sim.StrategyName(n))
		assigns[i] = st.Assignment()
		metrics[i], _ = sess.MetricsOf(sim.StrategyName(n))
	}
	snap, err := CaptureSnapshot(sess.Engine().Seq(), sess.Engine().Network(), names, assigns, metrics)
	if err != nil {
		t.Fatal(err)
	}
	return snap, sess
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap, sess := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshotRecord(&buf, snap); err != nil {
		t.Fatal(err)
	}
	recs, off, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if off == 0 || len(recs) != 1 || recs[0].Snap == nil {
		t.Fatalf("recs=%d off=%d", len(recs), off)
	}
	got := *recs[0].Snap
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("snapshot round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
	// The materialized assignment must equal the live one.
	st, _ := sess.StrategyOf(sim.Minim)
	if !reflect.DeepEqual(got.Strategies[0].Assignment(), st.Assignment()) {
		t.Fatal("materialized Minim assignment differs")
	}
	m, err := got.Strategies[1].RestoreMetrics()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sess.MetricsOf(sim.CP)
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("restored CP metrics %+v, want %+v", m, want)
	}
	// Topology round trip.
	ids, cfgs := got.Configs()
	net := adhoc.New()
	for i, id := range ids {
		if err := net.Join(id, cfgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ref := sess.Engine().Network()
	if net.Size() != ref.Size() {
		t.Fatalf("restored %d nodes, want %d", net.Size(), ref.Size())
	}
	for _, id := range ref.Nodes() {
		rc, _ := ref.Config(id)
		gc, ok := net.Config(id)
		if !ok || gc != rc {
			t.Fatalf("node %d config %+v, want %+v (ok=%v)", id, gc, rc, ok)
		}
	}
}

func TestSnapshotBadVersionRejected(t *testing.T) {
	snap, _ := snapshotFixture(t)
	snap.Version = SnapshotVersion + 1
	var buf bytes.Buffer
	if err := WriteSnapshotRecord(&buf, snap); err == nil {
		t.Fatal("writer accepted unknown snapshot version")
	}
	// Forge the line directly: the reader must reject it too.
	buf.Reset()
	buf.WriteString(`{"snap":{"version":99,"seq":0}}` + "\n")
	if _, _, err := ReadRecords(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("reader accepted unknown version, err=%v", err)
	}
}

func TestSnapshotValidation(t *testing.T) {
	cases := []string{
		`{"snap":{"version":1,"seq":-1}}`,
		`{"snap":{"version":1,"seq":0,"nodes":[{"id":1,"x":0,"y":0,"range":1},{"id":1,"x":2,"y":2,"range":1}]}}`,
		`{"snap":{"version":1,"seq":0,"nodes":[{"id":1,"x":0,"y":0,"range":-2}]}}`,
		`{"snap":{"version":1,"seq":0,"nodes":[],"strategies":[{"name":"Minim","assign":[{"id":7,"color":1}]}]}}`,
		`{"snap":{"version":1,"seq":0,"nodes":[{"id":7,"x":0,"y":0,"range":1}],"strategies":[{"name":"Minim","assign":[{"id":7,"color":0}]}]}}`,
		`{"snap":{"version":1,"seq":0},"ev":{"kind":"leave","id":1}}`,
		`{}`,
	}
	for i, line := range cases {
		if _, _, err := ReadRecords(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("case %d: malformed snapshot accepted: %s", i, line)
		}
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	snap, _ := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshotRecord(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for _, ev := range sampleScript()[:3] {
		if err := WriteEventRecord(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	committed := buf.Len()
	// Simulate a crash mid-append: half an event record, no newline.
	buf.WriteString(`{"ev":{"kind":"join","id":9`)
	recs, off, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if off != int64(committed) {
		t.Fatalf("committed offset %d, want %d", off, committed)
	}
	// A terminated malformed line is corruption, not a torn tail.
	buf.WriteString("\n")
	if _, _, err := ReadRecords(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("terminated malformed line accepted")
	}
}

// TestReadRecordsAt: offset-addressed reads resume exactly where a
// previous read stopped — the shipper's tailing pattern: read, writer
// appends (possibly tearing the last line), read again from the
// returned offset, and the concatenation equals one full read.
func TestReadRecordsAt(t *testing.T) {
	snap, _ := snapshotFixture(t)
	script := sampleScript()
	var buf bytes.Buffer
	if err := WriteSnapshotRecord(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for _, ev := range script[:2] {
		if err := WriteEventRecord(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	first, off, err := ReadRecordsAt(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 || off != int64(buf.Len()) {
		t.Fatalf("first read: %d records to offset %d (buffer %d)", len(first), off, buf.Len())
	}

	// The writer appends more, with a torn final line.
	for _, ev := range script[2:] {
		if err := WriteEventRecord(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	committed := buf.Len()
	buf.WriteString(`{"ev":{"kind":"move","id":`)
	second, off2, err := ReadRecordsAt(bytes.NewReader(buf.Bytes()), off)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(script)-2 {
		t.Fatalf("second read: %d records, want %d", len(second), len(script)-2)
	}
	if off2 != int64(committed) {
		t.Fatalf("second read stopped at %d, want committed %d", off2, committed)
	}
	for i, r := range second {
		if r.Ev == nil || !reflect.DeepEqual(*r.Ev, script[2+i]) {
			t.Fatalf("record %d of second read differs", i)
		}
	}
}

// TestBarrierRecordRoundTrip: compaction barriers are first-class WAL
// records — they interleave with snapshots and events, round-trip with
// their seq intact, and malformed ones are rejected.
func TestBarrierRecordRoundTrip(t *testing.T) {
	snap, _ := snapshotFixture(t)
	script := sampleScript()
	var buf bytes.Buffer
	if err := WriteSnapshotRecord(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteEventRecord(&buf, script[0]); err != nil {
		t.Fatal(err)
	}
	if err := WriteBarrierRecord(&buf, 41); err != nil {
		t.Fatal(err)
	}
	if err := WriteEventRecord(&buf, script[1]); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[2].Barrier == nil || recs[2].Barrier.Seq != 41 {
		t.Fatalf("record 2 = %+v, want barrier at seq 41", recs[2])
	}
	if recs[1].Ev == nil || recs[3].Ev == nil {
		t.Fatal("events around the barrier lost")
	}
	if err := WriteBarrierRecord(&buf, -1); err == nil {
		t.Fatal("negative barrier seq accepted")
	}
	// A committed line with a negative barrier is corruption.
	bad := bytes.NewBufferString(`{"barrier":{"seq":-3}}` + "\n")
	if _, _, err := ReadRecords(bad); err == nil {
		t.Fatal("negative barrier record accepted on read")
	}
	// A line claiming to be two kinds at once is rejected.
	dup := bytes.NewBufferString(`{"barrier":{"seq":1},"ev":{"kind":"leave","id":1}}` + "\n")
	if _, _, err := ReadRecords(dup); err == nil {
		t.Fatal("two-kinded record accepted")
	}
}
