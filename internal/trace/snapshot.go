// Snapshot records: the versioned point-in-time state a durable WAL
// compacts its event prefix into. A snapshot captures everything a
// session needs to resume — the network configuration of every node and
// each hosted strategy's code assignment plus cumulative metrics — so
// that "snapshot + event tail" reconstructs the exact pre-crash state.
//
// The WAL itself is a sequence of self-delimiting records — binary v2
// frames (binary.go) by default, with v1 newline-delimited JSON still
// readable for migration — where the first record is a snapshot and
// every following record one event. A record is committed iff its bytes
// are complete and parse; a truncated final record is a torn append
// (the writer died mid-write) and is ignored by ReadRecords, while
// malformed *complete* bytes are corruption and are rejected loudly.
// WriteSnapshotRecord / WriteEventRecord / WriteBarrierRecord emit the
// v1 NDJSON form, which survives as the human-readable debug export
// (cmd/waldump) and the migration compatibility surface.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/adhoc"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/strategy"
	"repro/internal/toca"
)

// SnapshotVersion identifies the on-disk snapshot schema. Bump it when
// the record shape changes; readers reject versions they do not know.
const SnapshotVersion = 1

// NodeState is one node's network configuration in a snapshot.
type NodeState struct {
	ID    int     `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Range float64 `json:"range"`
}

// ColorEntry is one node's code in a strategy's assignment.
type ColorEntry struct {
	ID    int `json:"id"`
	Color int `json:"color"`
}

// MetricsState is the serialized form of strategy.Metrics.
type MetricsState struct {
	Events          int            `json:"events"`
	TotalRecodings  int            `json:"total_recodings"`
	MaxColor        int            `json:"max_color"`
	PeakMaxColor    int            `json:"peak_max_color"`
	RecodingsByKind map[string]int `json:"recodings_by_kind,omitempty"`
}

// StrategyState is one hosted strategy's snapshot: its assignment and
// cumulative metrics, both sorted deterministically.
type StrategyState struct {
	Name    string       `json:"name"`
	Assign  []ColorEntry `json:"assign"`
	Metrics MetricsState `json:"metrics"`
}

// Snapshot is a versioned point-in-time state record: the event-log
// position it corresponds to, the full network topology, and every
// hosted strategy's state.
type Snapshot struct {
	Version    int             `json:"version"`
	Seq        int             `json:"seq"`
	Nodes      []NodeState     `json:"nodes"`
	Strategies []StrategyState `json:"strategies"`
}

// CaptureSnapshot builds a snapshot of a network and the given
// strategies' states at event-log position seq. Nodes and assignments
// are sorted by ID so identical states produce identical bytes.
func CaptureSnapshot(seq int, net *adhoc.Network, names []string, assigns []toca.Assignment, metrics []*strategy.Metrics) (Snapshot, error) {
	if len(names) != len(assigns) || len(names) != len(metrics) {
		return Snapshot{}, fmt.Errorf("trace: snapshot with %d names, %d assignments, %d metrics", len(names), len(assigns), len(metrics))
	}
	s := Snapshot{Version: SnapshotVersion, Seq: seq}
	for _, id := range net.Nodes() {
		cfg, _ := net.Config(id)
		s.Nodes = append(s.Nodes, NodeState{ID: int(id), X: cfg.Pos.X, Y: cfg.Pos.Y, Range: cfg.Range})
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].ID < s.Nodes[j].ID })
	for i, name := range names {
		ss := StrategyState{Name: name}
		for id, c := range assigns[i] {
			if c == toca.None {
				continue
			}
			ss.Assign = append(ss.Assign, ColorEntry{ID: int(id), Color: int(c)})
		}
		sort.Slice(ss.Assign, func(a, b int) bool { return ss.Assign[a].ID < ss.Assign[b].ID })
		if m := metrics[i]; m != nil {
			ss.Metrics = MetricsState{
				Events:         m.Events,
				TotalRecodings: m.TotalRecodings,
				MaxColor:       int(m.MaxColor),
				PeakMaxColor:   int(m.PeakMaxColor),
			}
			if len(m.RecodingsByKind) > 0 {
				ss.Metrics.RecodingsByKind = make(map[string]int, len(m.RecodingsByKind))
				for k, n := range m.RecodingsByKind {
					ss.Metrics.RecodingsByKind[k.String()] = n
				}
			}
		}
		s.Strategies = append(s.Strategies, ss)
	}
	return s, nil
}

// Configs returns the snapshot's topology as per-node configurations,
// sorted by ID.
func (s Snapshot) Configs() ([]graph.NodeID, []adhoc.Config) {
	ids := make([]graph.NodeID, 0, len(s.Nodes))
	cfgs := make([]adhoc.Config, 0, len(s.Nodes))
	for _, ns := range s.Nodes {
		ids = append(ids, graph.NodeID(ns.ID))
		cfgs = append(cfgs, adhoc.Config{Pos: geom.Point{X: ns.X, Y: ns.Y}, Range: ns.Range})
	}
	return ids, cfgs
}

// Assignment materializes one strategy's snapshot assignment.
func (ss StrategyState) Assignment() toca.Assignment {
	a := make(toca.Assignment, len(ss.Assign))
	for _, e := range ss.Assign {
		a[graph.NodeID(e.ID)] = toca.Color(e.Color)
	}
	return a
}

// RestoreMetrics materializes one strategy's snapshot metrics.
func (ss StrategyState) RestoreMetrics() (*strategy.Metrics, error) {
	m := strategy.NewMetrics()
	m.Events = ss.Metrics.Events
	m.TotalRecodings = ss.Metrics.TotalRecodings
	m.MaxColor = toca.Color(ss.Metrics.MaxColor)
	m.PeakMaxColor = toca.Color(ss.Metrics.PeakMaxColor)
	for ks, n := range ss.Metrics.RecodingsByKind {
		var kind strategy.EventKind
		switch ks {
		case "join":
			kind = strategy.Join
		case "leave":
			kind = strategy.Leave
		case "move":
			kind = strategy.Move
		case "power":
			kind = strategy.PowerChange
		default:
			return nil, fmt.Errorf("trace: unknown event kind %q in snapshot metrics", ks)
		}
		m.RecodingsByKind[kind] = n
	}
	return m, nil
}

// validate rejects snapshots a restore could not honor.
func (s Snapshot) validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("trace: unsupported snapshot version %d (want %d)", s.Version, SnapshotVersion)
	}
	if s.Seq < 0 {
		return fmt.Errorf("trace: snapshot with negative seq %d", s.Seq)
	}
	seen := make(map[int]struct{}, len(s.Nodes))
	for _, ns := range s.Nodes {
		if _, dup := seen[ns.ID]; dup {
			return fmt.Errorf("trace: snapshot repeats node %d", ns.ID)
		}
		seen[ns.ID] = struct{}{}
		if ns.Range < 0 {
			return fmt.Errorf("trace: snapshot node %d with negative range %g", ns.ID, ns.Range)
		}
	}
	for _, ss := range s.Strategies {
		for _, e := range ss.Assign {
			if _, ok := seen[e.ID]; !ok {
				return fmt.Errorf("trace: %s assigns color to node %d absent from topology", ss.Name, e.ID)
			}
			if e.Color <= 0 {
				return fmt.Errorf("trace: %s assigns non-positive color %d to node %d", ss.Name, e.Color, e.ID)
			}
		}
	}
	return nil
}

// Barrier is a compaction-barrier record: a marker a primary appends to
// its WAL (and ships in-stream to its followers) announcing that the
// log's prefix through Seq is about to be compacted into a snapshot.
// Barriers carry no state — they do not advance the event sequence and
// replay ignores them — they only coordinate when both sides of a
// replicated session may truncate sealed segments.
type Barrier struct {
	Seq int `json:"seq"`
}

// walRecord is one WAL line: exactly one of Snap, Ev, or Bar is set.
type walRecord struct {
	Snap *Snapshot    `json:"snap,omitempty"`
	Ev   *EventRecord `json:"ev,omitempty"`
	Bar  *Barrier     `json:"barrier,omitempty"`
}

// Record is one decoded WAL record. Seq is the frame header's sequence
// number for v2 records (and the embedded seq for v1 snapshots and
// barriers); v1 event lines carry no sequence and leave it zero. Frame
// is the record's canonical v2 encoding, populated only by readers that
// opt in (RecordScanner.CaptureFrames, ReadRecordsAt) and only for
// records read from v2 frames.
type Record struct {
	Snap    *Snapshot
	Ev      *strategy.Event
	Barrier *Barrier
	Seq     int
	Frame   []byte
}

// WriteSnapshotRecord appends one snapshot record line to w.
func WriteSnapshotRecord(w io.Writer, s Snapshot) error {
	if err := s.validate(); err != nil {
		return err
	}
	return writeRecord(w, walRecord{Snap: &s})
}

// WriteEventRecord appends one event record line to w.
func WriteEventRecord(w io.Writer, ev strategy.Event) error {
	ej, err := EncodeEvent(ev)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return writeRecord(w, walRecord{Ev: &ej})
}

// WriteBarrierRecord appends one compaction-barrier record line to w.
func WriteBarrierRecord(w io.Writer, seq int) error {
	if seq < 0 {
		return fmt.Errorf("trace: barrier with negative seq %d", seq)
	}
	return writeRecord(w, walRecord{Bar: &Barrier{Seq: seq}})
}

func writeRecord(w io.Writer, r walRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadRecordsAt decodes committed records starting at byte offset off
// of a WAL stream, returning them together with the absolute offset
// where the committed prefix ends. It is the offset-addressed read the
// replication shipper tails a live WAL file with: records before off
// were already consumed, a torn tail past the returned offset is simply
// "not yet committed", and the caller re-reads from the returned offset
// once the writer has appended more. Records read from v2 frames carry
// their raw encoding in Record.Frame so the replication feed ships the
// exact bytes without re-encoding.
func ReadRecordsAt(rs io.ReadSeeker, off int64) ([]Record, int64, error) {
	if _, err := rs.Seek(off, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("trace: seek %d: %w", off, err)
	}
	sc := NewRecordScanner(rs)
	sc.CaptureFrames()
	recs, n, err := scanAll(sc)
	if err != nil {
		return nil, 0, err
	}
	return recs, off + n, nil
}

// ReadRecords decodes a WAL stream. It returns every committed record
// along with the byte offset where the committed prefix ends: a torn
// final record — truncated at any byte — lies past that offset and is
// not a record, so a writer reopening the stream truncates to it before
// appending. Malformed complete bytes are corruption and fail the read.
func ReadRecords(r io.Reader) ([]Record, int64, error) {
	return scanAll(NewRecordScanner(r))
}

func scanAll(sc *RecordScanner) ([]Record, int64, error) {
	var recs []Record
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			return recs, sc.Committed(), nil
		}
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, rec)
	}
}
