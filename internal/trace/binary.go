// Binary WAL record format (v2). Each record is one self-delimiting
// frame:
//
//	magic (1 byte, 0xB2)
//	type  (1 byte: 0x01 snapshot, 0x02 event, 0x03 barrier)
//	seq   (uvarint: event-log position of the record)
//	len   (uvarint: payload length in bytes)
//	payload
//
// Payload numerics are fixed-width little-endian (node IDs uint64,
// coordinates/ranges IEEE-754 float64 bits); counts, lengths, and small
// non-negative integers are uvarints. The frame is append-encoded into a
// caller-owned buffer — the WAL's steady-state event append performs
// zero heap allocations per record.
//
// Format negotiation is per record, by sniffing the first byte: 0xB2 is
// a v2 frame, '{' (0x7B) a v1 NDJSON line. The two can coexist in one
// stream, so migrating a v1 log means simply continuing to append v2
// frames to it. Torn-tail semantics match v1: a frame cut off by a
// crash — at any byte offset — is "not yet committed" and ignored by
// RecordScanner, while a byte sequence that cannot be a prefix of a
// valid frame is corruption and fails the read loudly. The distinction
// is sound because a truncated frame can never declare an out-of-range
// length (a cut mid-varint leaves the continuation bit set, which reads
// as torn, not as a huge value) and committed records always end on a
// frame boundary (an unrecognized leading byte therefore cannot be
// explained as a torn remnant).
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/adhoc"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/strategy"
)

// FrameMagic is the first byte of every v2 binary record. It is
// distinct from '{' (0x7B), the first byte of every v1 NDJSON record,
// which is what makes per-record format sniffing unambiguous.
const FrameMagic byte = 0xB2

// Frame record types.
const (
	frameSnapshot byte = 0x01
	frameEvent    byte = 0x02
	frameBarrier  byte = 0x03
)

// Event kind bytes, shared by event payloads and snapshot metrics
// entries. They mirror strategy.EventKind's order but are pinned here
// independently: the on-disk format must not drift if the in-memory
// enum is ever reordered.
const (
	wireJoin  byte = 0x01
	wireLeave byte = 0x02
	wireMove  byte = 0x03
	wirePower byte = 0x04
)

// MaxFramePayload bounds a single record's payload (256 MiB). A frame
// declaring more is corruption, never a legitimate record: the bound
// exists so a flipped length byte cannot make a reader attempt a
// multi-gigabyte buffer.
const MaxFramePayload = 1 << 28

// Fixed event payload sizes: kind byte + uint64 id + float64 fields.
const (
	eventJoinLen  = 1 + 8 + 24 // id, x, y, range
	eventLeaveLen = 1 + 8      // id
	eventMoveLen  = 1 + 8 + 16 // id, x, y
	eventPowerLen = 1 + 8 + 8  // id, r
)

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(dst []byte, f float64) []byte {
	return appendU64(dst, math.Float64bits(f))
}

// AppendEventFrame appends one encoded v2 event frame to dst and
// returns the extended buffer. It allocates only if dst lacks capacity,
// so a reused buffer makes steady-state appends allocation-free.
func AppendEventFrame(dst []byte, seq int, ev strategy.Event) ([]byte, error) {
	if seq < 0 {
		return dst, fmt.Errorf("trace: event frame with negative seq %d", seq)
	}
	var kind byte
	var plen uint64
	switch ev.Kind {
	case strategy.Join:
		kind, plen = wireJoin, eventJoinLen
	case strategy.Leave:
		kind, plen = wireLeave, eventLeaveLen
	case strategy.Move:
		kind, plen = wireMove, eventMoveLen
	case strategy.PowerChange:
		kind, plen = wirePower, eventPowerLen
	default:
		return dst, fmt.Errorf("trace: unknown event kind %v", ev.Kind)
	}
	dst = append(dst, FrameMagic, frameEvent)
	dst = binary.AppendUvarint(dst, uint64(seq))
	dst = binary.AppendUvarint(dst, plen)
	dst = append(dst, kind)
	dst = appendU64(dst, uint64(int64(ev.ID)))
	switch ev.Kind {
	case strategy.Join:
		dst = appendF64(dst, ev.Cfg.Pos.X)
		dst = appendF64(dst, ev.Cfg.Pos.Y)
		dst = appendF64(dst, ev.Cfg.Range)
	case strategy.Move:
		dst = appendF64(dst, ev.Pos.X)
		dst = appendF64(dst, ev.Pos.Y)
	case strategy.PowerChange:
		dst = appendF64(dst, ev.R)
	}
	return dst, nil
}

// AppendBarrierFrame appends one encoded v2 compaction-barrier frame
// (empty payload; the barrier's seq rides in the frame header).
func AppendBarrierFrame(dst []byte, seq int) ([]byte, error) {
	if seq < 0 {
		return dst, fmt.Errorf("trace: barrier with negative seq %d", seq)
	}
	dst = append(dst, FrameMagic, frameBarrier)
	dst = binary.AppendUvarint(dst, uint64(seq))
	dst = binary.AppendUvarint(dst, 0)
	return dst, nil
}

// AppendSnapshotFrame appends one encoded v2 snapshot frame. The
// snapshot's Seq rides in the frame header; the payload carries the
// schema version, topology, and per-strategy state. Snapshots are rare
// (creation and compaction), so the two-pass size computation favors
// clarity over squeezing out the last allocation.
func AppendSnapshotFrame(dst []byte, s Snapshot) ([]byte, error) {
	if err := s.validate(); err != nil {
		return dst, err
	}
	payload, err := appendSnapshotPayload(make([]byte, 0, snapshotPayloadCap(s)), s)
	if err != nil {
		return dst, err
	}
	if len(payload) > MaxFramePayload {
		return dst, fmt.Errorf("trace: snapshot payload of %d bytes exceeds frame limit", len(payload))
	}
	dst = append(dst, FrameMagic, frameSnapshot)
	dst = binary.AppendUvarint(dst, uint64(s.Seq))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...), nil
}

// snapshotPayloadCap over-estimates the payload size so the encode
// buffer is sized in one allocation.
func snapshotPayloadCap(s Snapshot) int {
	n := 32 + len(s.Nodes)*32
	for _, ss := range s.Strategies {
		n += 64 + len(ss.Name) + len(ss.Assign)*18 + len(ss.Metrics.RecodingsByKind)*11
	}
	return n
}

func appendSnapshotPayload(dst []byte, s Snapshot) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(s.Version))
	dst = binary.AppendUvarint(dst, uint64(len(s.Nodes)))
	for _, ns := range s.Nodes {
		dst = appendU64(dst, uint64(int64(ns.ID)))
		dst = appendF64(dst, ns.X)
		dst = appendF64(dst, ns.Y)
		dst = appendF64(dst, ns.Range)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Strategies)))
	for _, ss := range s.Strategies {
		dst = binary.AppendUvarint(dst, uint64(len(ss.Name)))
		dst = append(dst, ss.Name...)
		dst = binary.AppendUvarint(dst, uint64(len(ss.Assign)))
		for _, e := range ss.Assign {
			dst = appendU64(dst, uint64(int64(e.ID)))
			dst = binary.AppendUvarint(dst, uint64(e.Color))
		}
		m := ss.Metrics
		if m.Events < 0 || m.TotalRecodings < 0 || m.MaxColor < 0 || m.PeakMaxColor < 0 {
			return dst, fmt.Errorf("trace: %s snapshot metrics with negative counter", ss.Name)
		}
		dst = binary.AppendUvarint(dst, uint64(m.Events))
		dst = binary.AppendUvarint(dst, uint64(m.TotalRecodings))
		dst = binary.AppendUvarint(dst, uint64(m.MaxColor))
		dst = binary.AppendUvarint(dst, uint64(m.PeakMaxColor))
		// Recodings-by-kind entries in fixed kind-byte order so identical
		// snapshots encode to identical bytes regardless of map iteration.
		dst = binary.AppendUvarint(dst, uint64(len(m.RecodingsByKind)))
		written := 0
		for _, ks := range [...]string{"join", "leave", "move", "power"} {
			n, ok := m.RecodingsByKind[ks]
			if !ok {
				continue
			}
			if n < 0 {
				return dst, fmt.Errorf("trace: %s snapshot with negative %s recodings", ss.Name, ks)
			}
			kb, err := wireEventKind(ks)
			if err != nil {
				return dst, err
			}
			dst = append(dst, kb)
			dst = binary.AppendUvarint(dst, uint64(n))
			written++
		}
		if written != len(m.RecodingsByKind) {
			return dst, fmt.Errorf("trace: %s snapshot metrics with unknown event kind", ss.Name)
		}
	}
	return dst, nil
}

func wireEventKind(ks string) (byte, error) {
	switch ks {
	case "join":
		return wireJoin, nil
	case "leave":
		return wireLeave, nil
	case "move":
		return wireMove, nil
	case "power":
		return wirePower, nil
	default:
		return 0, fmt.Errorf("trace: unknown event kind %q", ks)
	}
}

func eventKindName(kb byte) (string, error) {
	switch kb {
	case wireJoin:
		return "join", nil
	case wireLeave:
		return "leave", nil
	case wireMove:
		return "move", nil
	case wirePower:
		return "power", nil
	default:
		return "", fmt.Errorf("trace: unknown event kind byte 0x%02x", kb)
	}
}

// payloadReader walks a frame payload with bounds checks; every read
// error is corruption (the frame declared a length its contents do not
// honor).
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) u8() (byte, error) {
	if p.off >= len(p.b) {
		return 0, errShortPayload
	}
	v := p.b[p.off]
	p.off++
	return v, nil
}

func (p *payloadReader) u64() (uint64, error) {
	if p.off+8 > len(p.b) {
		return 0, errShortPayload
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v, nil
}

func (p *payloadReader) f64() (float64, error) {
	v, err := p.u64()
	return math.Float64frombits(v), err
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, errShortPayload
	}
	p.off += n
	return v, nil
}

// count reads a uvarint collection count and rejects values that cannot
// fit in the remaining payload at least one byte per element — a bound
// that stops a corrupt count from driving a huge allocation.
func (p *payloadReader) count() (int, error) {
	v, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(p.b)-p.off) {
		return 0, fmt.Errorf("trace: collection count %d exceeds remaining payload", v)
	}
	return int(v), nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.count()
	if err != nil {
		return "", err
	}
	s := string(p.b[p.off : p.off+n])
	p.off += n
	return s, nil
}

func (p *payloadReader) done() error {
	if p.off != len(p.b) {
		return fmt.Errorf("trace: %d trailing payload bytes", len(p.b)-p.off)
	}
	return nil
}

var errShortPayload = errors.New("trace: frame payload shorter than its contents require")

func decodeEventPayload(p []byte) (strategy.Event, error) {
	r := payloadReader{b: p}
	kb, err := r.u8()
	if err != nil {
		return strategy.Event{}, err
	}
	idU, err := r.u64()
	if err != nil {
		return strategy.Event{}, err
	}
	id := graph.NodeID(int64(idU))
	var ev strategy.Event
	switch kb {
	case wireJoin:
		x, _ := r.f64()
		y, _ := r.f64()
		rng, err := r.f64()
		if err != nil {
			return strategy.Event{}, err
		}
		if !(rng >= 0) { // rejects negatives and NaN
			return strategy.Event{}, fmt.Errorf("trace: join of %d with invalid range %g", id, rng)
		}
		ev = strategy.JoinEvent(id, adhoc.Config{Pos: geom.Point{X: x, Y: y}, Range: rng})
	case wireLeave:
		ev = strategy.LeaveEvent(id)
	case wireMove:
		x, _ := r.f64()
		y, err := r.f64()
		if err != nil {
			return strategy.Event{}, err
		}
		ev = strategy.MoveEvent(id, geom.Point{X: x, Y: y})
	case wirePower:
		rng, err := r.f64()
		if err != nil {
			return strategy.Event{}, err
		}
		if !(rng >= 0) {
			return strategy.Event{}, fmt.Errorf("trace: power of %d with invalid range %g", id, rng)
		}
		ev = strategy.PowerEvent(id, rng)
	default:
		return strategy.Event{}, fmt.Errorf("trace: unknown event kind byte 0x%02x", kb)
	}
	if err := r.done(); err != nil {
		return strategy.Event{}, err
	}
	return ev, nil
}

func decodeSnapshotPayload(p []byte) (Snapshot, error) {
	r := payloadReader{b: p}
	var s Snapshot
	ver, err := r.uvarint()
	if err != nil {
		return s, err
	}
	if ver > math.MaxInt32 {
		return s, fmt.Errorf("trace: unsupported snapshot version %d", ver)
	}
	s.Version = int(ver)
	nNodes, err := r.count()
	if err != nil {
		return s, err
	}
	if nNodes > 0 {
		s.Nodes = make([]NodeState, 0, nNodes)
	}
	for i := 0; i < nNodes; i++ {
		idU, err := r.u64()
		if err != nil {
			return s, err
		}
		x, _ := r.f64()
		y, _ := r.f64()
		rng, err := r.f64()
		if err != nil {
			return s, err
		}
		s.Nodes = append(s.Nodes, NodeState{ID: int(int64(idU)), X: x, Y: y, Range: rng})
	}
	nStrats, err := r.count()
	if err != nil {
		return s, err
	}
	if nStrats > 0 {
		s.Strategies = make([]StrategyState, 0, nStrats)
	}
	for i := 0; i < nStrats; i++ {
		var ss StrategyState
		if ss.Name, err = r.str(); err != nil {
			return s, err
		}
		nAssign, err := r.count()
		if err != nil {
			return s, err
		}
		if nAssign > 0 {
			ss.Assign = make([]ColorEntry, 0, nAssign)
		}
		for j := 0; j < nAssign; j++ {
			idU, err := r.u64()
			if err != nil {
				return s, err
			}
			col, err := r.uvarint()
			if err != nil {
				return s, err
			}
			if col > math.MaxInt32 {
				return s, fmt.Errorf("trace: %s assigns out-of-range color %d", ss.Name, col)
			}
			ss.Assign = append(ss.Assign, ColorEntry{ID: int(int64(idU)), Color: int(col)})
		}
		counters := [4]uint64{}
		for k := range counters {
			if counters[k], err = r.uvarint(); err != nil {
				return s, err
			}
			if counters[k] > math.MaxInt32 {
				return s, fmt.Errorf("trace: %s snapshot metrics counter out of range", ss.Name)
			}
		}
		ss.Metrics = MetricsState{
			Events:         int(counters[0]),
			TotalRecodings: int(counters[1]),
			MaxColor:       int(counters[2]),
			PeakMaxColor:   int(counters[3]),
		}
		nKinds, err := r.count()
		if err != nil {
			return s, err
		}
		if nKinds > 0 {
			ss.Metrics.RecodingsByKind = make(map[string]int, nKinds)
		}
		for j := 0; j < nKinds; j++ {
			kb, err := r.u8()
			if err != nil {
				return s, err
			}
			ks, err := eventKindName(kb)
			if err != nil {
				return s, err
			}
			n, err := r.uvarint()
			if err != nil {
				return s, err
			}
			if n > math.MaxInt32 {
				return s, fmt.Errorf("trace: %s snapshot with out-of-range %s recodings", ss.Name, ks)
			}
			if _, dup := ss.Metrics.RecodingsByKind[ks]; dup {
				return s, fmt.Errorf("trace: %s snapshot repeats %s recodings", ss.Name, ks)
			}
			ss.Metrics.RecodingsByKind[ks] = int(n)
		}
		s.Strategies = append(s.Strategies, ss)
	}
	if err := r.done(); err != nil {
		return s, err
	}
	return s, nil
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// RecordScanner decodes a WAL stream record by record, sniffing each
// record's format from its first byte (v2 frame vs v1 NDJSON line) so
// mixed-format logs — a v1 log continued in v2 — replay seamlessly.
// The payload buffer is reused across records; decoded Records do not
// alias it.
//
// Next returns io.EOF both at a clean end of stream and at a torn tail
// (a final record cut off mid-write): in either case Committed reports
// where the committed prefix ends, and bytes past it are not records.
// Malformed committed bytes are corruption and return a non-EOF error.
type RecordScanner struct {
	br        *bufio.Reader
	committed int64
	payload   []byte
	capture   bool
	idx       int
}

// NewRecordScanner wraps r for record-at-a-time decoding.
func NewRecordScanner(r io.Reader) *RecordScanner {
	return &RecordScanner{br: bufio.NewReaderSize(r, 64<<10)}
}

// CaptureFrames makes Next attach each record's canonical v2 encoding
// as Record.Frame — the replication feed's encode-once source. Records
// read from v1 NDJSON lines get a nil Frame (the feed transcodes those
// once on ingest).
func (s *RecordScanner) CaptureFrames() { s.capture = true }

// Committed returns the byte offset where the committed record prefix
// ends: every complete record decoded so far, excluding any torn tail.
func (s *RecordScanner) Committed() int64 { return s.committed }

func isTornEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// Next decodes the next committed record, or io.EOF at end of stream /
// torn tail.
func (s *RecordScanner) Next() (Record, error) {
	b0, err := s.br.ReadByte()
	if err != nil {
		if isTornEOF(err) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	i := s.idx
	if b0 == '{' {
		if err := s.br.UnreadByte(); err != nil {
			return Record{}, err
		}
		return s.nextJSON(i)
	}
	if b0 != FrameMagic {
		return Record{}, fmt.Errorf("trace: record %d: unknown record format byte 0x%02x", i, b0)
	}
	typ, err := s.br.ReadByte()
	if err != nil {
		if isTornEOF(err) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
	}
	seqU, err := binary.ReadUvarint(s.br)
	if err != nil {
		if isTornEOF(err) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
	}
	plenU, err := binary.ReadUvarint(s.br)
	if err != nil {
		if isTornEOF(err) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
	}
	if seqU > math.MaxInt64 {
		return Record{}, fmt.Errorf("trace: record %d: seq %d out of range", i, seqU)
	}
	if plenU > MaxFramePayload {
		return Record{}, fmt.Errorf("trace: record %d: payload length %d exceeds frame limit", i, plenU)
	}
	plen := int(plenU)
	if cap(s.payload) < plen {
		s.payload = make([]byte, plen)
	}
	p := s.payload[:plen]
	if _, err := io.ReadFull(s.br, p); err != nil {
		if isTornEOF(err) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
	}
	seq := int(seqU)
	rec := Record{Seq: seq}
	switch typ {
	case frameEvent:
		ev, err := decodeEventPayload(p)
		if err != nil {
			return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
		}
		rec.Ev = &ev
	case frameSnapshot:
		snap, err := decodeSnapshotPayload(p)
		if err != nil {
			return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
		}
		snap.Seq = seq
		if err := snap.validate(); err != nil {
			return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
		}
		rec.Snap = &snap
	case frameBarrier:
		if plen != 0 {
			return Record{}, fmt.Errorf("trace: record %d: barrier with %d-byte payload", i, plen)
		}
		rec.Barrier = &Barrier{Seq: seq}
	default:
		return Record{}, fmt.Errorf("trace: record %d: unknown frame type 0x%02x", i, typ)
	}
	frameLen := 2 + uvarintLen(seqU) + uvarintLen(plenU) + plen
	if s.capture {
		f := make([]byte, 0, frameLen)
		f = append(f, FrameMagic, typ)
		f = binary.AppendUvarint(f, seqU)
		f = binary.AppendUvarint(f, plenU)
		rec.Frame = append(f, p...)
	}
	s.committed += int64(frameLen)
	s.idx++
	return rec, nil
}

// nextJSON decodes one v1 NDJSON record line. A record is committed iff
// its line is newline-terminated and parses; an unterminated final line
// is a torn append.
func (s *RecordScanner) nextJSON(i int) (Record, error) {
	line, err := s.br.ReadBytes('\n')
	if err != nil {
		if isTornEOF(err) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
	}
	var wr walRecord
	if err := json.Unmarshal(line, &wr); err != nil {
		return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
	}
	var rec Record
	switch {
	case wr.Snap != nil && wr.Ev == nil && wr.Bar == nil:
		if err := wr.Snap.validate(); err != nil {
			return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
		}
		rec = Record{Snap: wr.Snap, Seq: wr.Snap.Seq}
	case wr.Ev != nil && wr.Snap == nil && wr.Bar == nil:
		ev, err := DecodeEvent(*wr.Ev)
		if err != nil {
			return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
		}
		rec = Record{Ev: &ev}
	case wr.Bar != nil && wr.Snap == nil && wr.Ev == nil:
		if wr.Bar.Seq < 0 {
			return Record{}, fmt.Errorf("trace: record %d: barrier with negative seq %d", i, wr.Bar.Seq)
		}
		rec = Record{Barrier: wr.Bar, Seq: wr.Bar.Seq}
	default:
		return Record{}, fmt.Errorf("trace: record %d is not exactly one of snapshot, event, barrier", i)
	}
	s.committed += int64(len(line))
	s.idx++
	return rec, nil
}
