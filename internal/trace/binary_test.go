package trace

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"repro/internal/adhoc"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/strategy"
)

func testEvents() []strategy.Event {
	return []strategy.Event{
		strategy.JoinEvent(1, adhoc.Config{Pos: geom.Point{X: 1.5, Y: -2.25}, Range: 30}),
		strategy.JoinEvent(7, adhoc.Config{Pos: geom.Point{X: -0.001, Y: 1e9}, Range: 0}),
		strategy.MoveEvent(1, geom.Point{X: math.Pi, Y: -math.SmallestNonzeroFloat64}),
		strategy.PowerEvent(7, 55.5),
		strategy.LeaveEvent(1),
	}
}

func testSnapshot() Snapshot {
	return Snapshot{
		Version: SnapshotVersion,
		Seq:     42,
		Nodes: []NodeState{
			{ID: 1, X: 1.5, Y: -2.25, Range: 30},
			{ID: 7, X: -0.001, Y: 1e9, Range: 0},
		},
		Strategies: []StrategyState{
			{
				Name:   "minim",
				Assign: []ColorEntry{{ID: 1, Color: 2}, {ID: 7, Color: 1}},
				Metrics: MetricsState{
					Events: 42, TotalRecodings: 9, MaxColor: 2, PeakMaxColor: 3,
					RecodingsByKind: map[string]int{"join": 5, "move": 4},
				},
			},
			{Name: "cp", Metrics: MetricsState{Events: 42}},
		},
	}
}

// encodeStream builds a v2 stream: snapshot, the test events, a barrier.
func encodeStream(t *testing.T) ([]byte, []Record) {
	t.Helper()
	snap := testSnapshot()
	var buf []byte
	var err error
	if buf, err = AppendSnapshotFrame(buf, snap); err != nil {
		t.Fatal(err)
	}
	want := []Record{{Snap: &snap, Seq: snap.Seq}}
	seq := snap.Seq
	for _, ev := range testEvents() {
		seq++
		ev := ev
		if buf, err = AppendEventFrame(buf, seq, ev); err != nil {
			t.Fatal(err)
		}
		want = append(want, Record{Ev: &ev, Seq: seq})
	}
	if buf, err = AppendBarrierFrame(buf, seq); err != nil {
		t.Fatal(err)
	}
	want = append(want, Record{Barrier: &Barrier{Seq: seq}, Seq: seq})
	return buf, want
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Seq != w.Seq {
			t.Fatalf("record %d: seq %d, want %d", i, g.Seq, w.Seq)
		}
		switch {
		case w.Snap != nil:
			if g.Snap == nil || !reflect.DeepEqual(*g.Snap, *w.Snap) {
				t.Fatalf("record %d: snapshot %+v, want %+v", i, g.Snap, w.Snap)
			}
		case w.Ev != nil:
			if g.Ev == nil || *g.Ev != *w.Ev {
				t.Fatalf("record %d: event %+v, want %+v", i, g.Ev, w.Ev)
			}
		case w.Barrier != nil:
			if g.Barrier == nil || *g.Barrier != *w.Barrier {
				t.Fatalf("record %d: barrier %+v, want %+v", i, g.Barrier, w.Barrier)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	buf, want := encodeStream(t)
	got, off, err := ReadRecords(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(len(buf)) {
		t.Fatalf("committed offset %d, want %d", off, len(buf))
	}
	sameRecords(t, got, want)
}

// TestFrameCapture: ReadRecordsAt attaches each v2 record's exact
// on-disk bytes, and re-encoding a captured record reproduces them.
func TestFrameCapture(t *testing.T) {
	buf, _ := encodeStream(t)
	recs, off, err := ReadRecordsAt(bytes.NewReader(buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(len(buf)) {
		t.Fatalf("committed offset %d, want %d", off, len(buf))
	}
	var rejoined []byte
	for i, r := range recs {
		if r.Frame == nil {
			t.Fatalf("record %d: no captured frame", i)
		}
		rejoined = append(rejoined, r.Frame...)
	}
	if !bytes.Equal(rejoined, buf) {
		t.Fatal("concatenated captured frames differ from the original stream")
	}
	for i, r := range recs {
		if r.Ev == nil {
			continue
		}
		re, err := AppendEventFrame(nil, r.Seq, *r.Ev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, r.Frame) {
			t.Fatalf("record %d: re-encode differs from captured frame", i)
		}
	}
}

// TestTornTailMatrix: truncating a v2 stream at EVERY byte offset either
// recovers the complete-record prefix cleanly (a torn final record is
// ignored) or — never — errors or invents records.
func TestTornTailMatrix(t *testing.T) {
	buf, want := encodeStream(t)
	// Committed byte boundary after each record.
	bounds := []int64{0}
	sc := NewRecordScanner(bytes.NewReader(buf))
	for {
		if _, err := sc.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, sc.Committed())
	}
	for cut := 0; cut <= len(buf); cut++ {
		got, off, err := ReadRecords(bytes.NewReader(buf[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		n := 0
		for n+1 < len(bounds) && bounds[n+1] <= int64(cut) {
			n++
		}
		if off != bounds[n] {
			t.Fatalf("cut at %d: committed %d, want %d", cut, off, bounds[n])
		}
		sameRecords(t, got, want[:n])
	}
}

// TestMixedFormatStream: v1 NDJSON records and v2 frames interleave in
// one stream — the migration shape (v1 log continued in v2).
func TestMixedFormatStream(t *testing.T) {
	snap := testSnapshot()
	var v1 bytes.Buffer
	if err := WriteSnapshotRecord(&v1, snap); err != nil {
		t.Fatal(err)
	}
	evs := testEvents()
	if err := WriteEventRecord(&v1, evs[0]); err != nil {
		t.Fatal(err)
	}
	stream := v1.Bytes()
	var err error
	if stream, err = AppendEventFrame(stream, snap.Seq+2, evs[1]); err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendBarrierFrame(stream, snap.Seq+2); err != nil {
		t.Fatal(err)
	}
	recs, off, err := ReadRecords(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(len(stream)) {
		t.Fatalf("committed %d, want %d", off, len(stream))
	}
	if len(recs) != 4 || recs[0].Snap == nil || recs[1].Ev == nil || recs[2].Ev == nil || recs[3].Barrier == nil {
		t.Fatalf("unexpected record shapes: %+v", recs)
	}
	if *recs[1].Ev != evs[0] || *recs[2].Ev != evs[1] {
		t.Fatal("events did not survive the mixed-format round trip")
	}
	if recs[1].Frame != nil {
		t.Fatal("v1 record came back with a captured frame from a non-capturing read")
	}
}

func TestCorruptStreams(t *testing.T) {
	valid, _ := encodeStream(t)
	cases := map[string][]byte{
		"unknown leading byte":   append([]byte{0x00}, valid...),
		"unknown frame type":     {FrameMagic, 0x7f, 0x01, 0x00},
		"oversized length":       {FrameMagic, frameEvent, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"barrier with payload":   {FrameMagic, frameBarrier, 0x01, 0x01, 0xaa},
		"event bad kind":         {FrameMagic, frameEvent, 0x01, 0x09, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8},
		"event trailing payload": {FrameMagic, frameEvent, 0x01, 0x0a, 0x02, 1, 2, 3, 4, 5, 6, 7, 8, 0xee},
	}
	for name, stream := range cases {
		if _, _, err := ReadRecords(bytes.NewReader(stream)); err == nil {
			t.Errorf("%s: corrupt stream read back cleanly", name)
		}
	}
}

// FuzzDecodeRecord: arbitrary bytes never panic the scanner; they
// decode, report a torn tail, or fail loudly.
func FuzzDecodeRecord(f *testing.F) {
	valid, _ := func() ([]byte, []Record) {
		snap := testSnapshot()
		buf, _ := AppendSnapshotFrame(nil, snap)
		buf, _ = AppendEventFrame(buf, 43, strategy.LeaveEvent(1))
		return buf, nil
	}()
	f.Add(valid)
	f.Add([]byte(`{"ev":{"kind":"leave","id":1}}` + "\n"))
	f.Add([]byte{FrameMagic, frameBarrier, 0x05, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off, err := ReadRecords(bytes.NewReader(data))
		if err != nil {
			return
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("committed offset %d outside [0,%d]", off, len(data))
		}
		// The committed prefix must re-read to the same records.
		again, off2, err := ReadRecords(bytes.NewReader(data[:off]))
		if err != nil || off2 != off || len(again) != len(recs) {
			t.Fatalf("committed prefix re-read: %d records @%d, err %v (want %d @%d)", len(again), off2, err, len(recs), off)
		}
	})
}

// FuzzFrameRoundTrip: every representable event encodes to a frame that
// decodes back to exactly itself.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, int64(1), 1.0, 2.0, 30.0, uint(5))
	f.Add(1, int64(-3), 0.0, 0.0, 0.0, uint(0))
	f.Add(2, int64(1<<40), math.Inf(1), -0.0, 1e-300, uint(1000))
	f.Add(3, int64(7), 1.0, 2.0, math.MaxFloat64, uint(77))
	f.Fuzz(func(t *testing.T, kind int, id int64, x, y, r float64, seq uint) {
		var ev strategy.Event
		switch ((kind % 4) + 4) % 4 {
		case 0:
			if !(r >= 0) {
				r = 0
			}
			ev = strategy.JoinEvent(graph.NodeID(id), adhoc.Config{Pos: geom.Point{X: x, Y: y}, Range: r})
		case 1:
			ev = strategy.LeaveEvent(graph.NodeID(id))
		case 2:
			ev = strategy.MoveEvent(graph.NodeID(id), geom.Point{X: x, Y: y})
		case 3:
			if !(r >= 0) {
				r = 0
			}
			ev = strategy.PowerEvent(graph.NodeID(id), r)
		}
		s := int(seq % (1 << 40))
		frame, err := AppendEventFrame(nil, s, ev)
		if err != nil {
			t.Fatal(err)
		}
		recs, off, err := ReadRecords(bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(len(frame)) || len(recs) != 1 || recs[0].Ev == nil {
			t.Fatalf("frame did not decode to one committed event (off %d/%d, %d recs)", off, len(frame), len(recs))
		}
		if recs[0].Seq != s {
			t.Fatalf("seq %d, want %d", recs[0].Seq, s)
		}
		got := *recs[0].Ev
		if got != ev && !(eventNaNEqual(got, ev)) {
			t.Fatalf("round trip changed event: %+v -> %+v", ev, got)
		}
	})
}

// eventNaNEqual treats NaN coordinates as equal to themselves so the
// fuzzer can assert bit-faithful round trips on NaN inputs too.
func eventNaNEqual(a, b strategy.Event) bool {
	f := func(v float64) uint64 { return math.Float64bits(v) }
	return a.Kind == b.Kind && a.ID == b.ID &&
		f(a.Cfg.Pos.X) == f(b.Cfg.Pos.X) && f(a.Cfg.Pos.Y) == f(b.Cfg.Pos.Y) && f(a.Cfg.Range) == f(b.Cfg.Range) &&
		f(a.Pos.X) == f(b.Pos.X) && f(a.Pos.Y) == f(b.Pos.Y) && f(a.R) == f(b.R)
}
