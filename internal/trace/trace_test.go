package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func sampleScript() []strategy.Event {
	p := workload.Defaults()
	p.N = 15
	return workload.Churn(42, p, 40, workload.ChurnWeights{Join: 1, Leave: 1, Move: 2, Power: 1})
}

func TestRoundTrip(t *testing.T) {
	events := sampleScript()
	var buf bytes.Buffer
	if err := Save(&buf, "sample", events); err != nil {
		t.Fatal(err)
	}
	name, got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sample" {
		t.Fatalf("name = %q", name)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

// TestReplayEquivalence: replaying a saved trace produces the identical
// simulation outcome as the original script.
func TestReplayEquivalence(t *testing.T) {
	events := sampleScript()
	var buf bytes.Buffer
	if err := Save(&buf, "replay", events); err != nil {
		t.Fatal(err)
	}
	_, replayed, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sim.Run(sim.AllStrategies, events, true)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sim.Run(sim.AllStrategies, replayed, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i].Final != replay[i].Final {
			t.Fatalf("strategy %s: %+v != %+v", orig[i].Name, orig[i].Final, replay[i].Final)
		}
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	in := `{"version": 99, "events": []}`
	if _, _, err := Load(strings.NewReader(in)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLoadRejectsUnknownKind(t *testing.T) {
	in := `{"version": 1, "events": [{"kind": "teleport", "id": 1}]}`
	if _, _, err := Load(strings.NewReader(in)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	in := `{"version": 1, "bogus": true, "events": []}`
	if _, _, err := Load(strings.NewReader(in)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadRejectsNegativeRanges(t *testing.T) {
	for _, in := range []string{
		`{"version": 1, "events": [{"kind": "join", "id": 1, "range": -5}]}`,
		`{"version": 1, "events": [{"kind": "power", "id": 1, "range": -5}]}`,
	} {
		if _, _, err := Load(strings.NewReader(in)); err == nil {
			t.Fatalf("negative range accepted: %s", in)
		}
	}
}

func TestSaveRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "", []strategy.Event{{Kind: 99}}); err == nil {
		t.Fatal("unknown kind saved")
	}
}

func TestEmptyScript(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	name, events, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "empty" || len(events) != 0 {
		t.Fatalf("got %q %v", name, events)
	}
}
