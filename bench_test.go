// Package repro's benchmark harness: one testing.B benchmark per paper
// figure (Fig 10(a-f), 11(a-c), 12(a-d)) plus the ablation benches of
// DESIGN.md section 8. Figure benches run a reduced number of runs per
// point per iteration (the -runs equivalent is the benchRuns constant)
// and report the headline series values as custom metrics so `go test
// -bench` output doubles as a sanity check of the reproduced shapes.
//
// Regenerate the full paper tables with cmd/repro instead; these benches
// measure the cost of regenerating them and pin the shape invariants.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/adhoc"
	bbbpkg "repro/internal/bbb"
	"repro/internal/coloring"
	"repro/internal/core"
	cppkg "repro/internal/cp"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/radio"
	shardpkg "repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/toca"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// benchRuns is the number of simulated networks per plotted point inside
// the figure benches (the paper uses 100; benches keep iterations short).
const benchRuns = 2

func benchConfig(i int) experiments.Config {
	return experiments.Config{Runs: benchRuns, Seed: uint64(1000 + i), Workers: 0}
}

// benchFigure runs one figure regeneration per b.N iteration and reports
// the last x-point's Minim value as a custom metric.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ByID(id, benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		s := fig.Series[0]
		last = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(last, "minim_last_point")
}

// ---- One bench per paper figure ----

func BenchmarkFig10a(b *testing.B) { benchFigure(b, "10a") }
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "10b") }
func BenchmarkFig10c(b *testing.B) { benchFigure(b, "10c") }
func BenchmarkFig10d(b *testing.B) { benchFigure(b, "10d") }
func BenchmarkFig10e(b *testing.B) { benchFigure(b, "10e") }
func BenchmarkFig10f(b *testing.B) { benchFigure(b, "10f") }
func BenchmarkFig11a(b *testing.B) { benchFigure(b, "11a") }
func BenchmarkFig11b(b *testing.B) { benchFigure(b, "11b") }
func BenchmarkFig11c(b *testing.B) { benchFigure(b, "11c") }
func BenchmarkFig12a(b *testing.B) { benchFigure(b, "12a") }
func BenchmarkFig12b(b *testing.B) { benchFigure(b, "12b") }
func BenchmarkFig12c(b *testing.B) { benchFigure(b, "12c") }
func BenchmarkFig12d(b *testing.B) { benchFigure(b, "12d") }

// ---- Per-event microbenchmarks ----

// benchJoinEvent measures the cost of one join handled by the named
// strategy at a given network size.
func benchJoinEvent(b *testing.B, name sim.StrategyName, n int) {
	b.Helper()
	p := workload.Defaults()
	p.N = n
	base := workload.JoinScript(7, p)
	rng := xrand.New(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := sim.NewStrategy(name)
		if err != nil {
			b.Fatal(err)
		}
		sess := sim.NewSession(st, false)
		if err := sess.Apply(base); err != nil {
			b.Fatal(err)
		}
		cfg := adhoc.Config{
			Pos:   geom.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)},
			Range: rng.Uniform(20.5, 30.5),
		}
		ev := []strategy.Event{strategy.JoinEvent(graph.NodeID(n+1), cfg)}
		b.StartTimer()
		if err := sess.Apply(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinEventMinim100(b *testing.B) { benchJoinEvent(b, sim.Minim, 100) }
func BenchmarkJoinEventCP100(b *testing.B)    { benchJoinEvent(b, sim.CP, 100) }
func BenchmarkJoinEventBBB100(b *testing.B)   { benchJoinEvent(b, sim.BBB, 100) }

// ---- n=1000 event benchmarks: indexed-by-default vs the scan path ----
//
// The base network is built once (1000 joins); each iteration then times
// a single event. Join iterations are paired with an untimed leave so
// the population stays at 1000. The *Scan variants run the identical
// strategy over a NewScan network — the seed architecture's O(n)
// candidate scans — so the indexed-by-default win is visible in the
// BENCH trajectory.
//
// The arena is scaled to hold the paper's N=100-on-100x100 density at
// N=1000 (side ~316): per-event recoding work stays local, so the
// benchmark isolates the neighbor-discovery cost the grid removes. At
// the paper's fixed arena, n=1000 is ~10x denser and the matching
// dominates both paths.

// bench1000Arena is the constant-density arena side for n=1000.
const bench1000Arena = 316.0

// bench1000Base returns a session over st with the 1000-node join base
// applied.
func bench1000Base(b *testing.B, st strategy.Strategy) *sim.Session {
	b.Helper()
	p := workload.Defaults()
	p.N = 1000
	p.ArenaW, p.ArenaH = bench1000Arena, bench1000Arena
	sess := sim.NewSession(st, false)
	if err := sess.Apply(workload.JoinScript(7, p)); err != nil {
		b.Fatal(err)
	}
	return sess
}

func benchJoinEvent1000(b *testing.B, st strategy.Strategy) {
	sess := bench1000Base(b, st)
	rng := xrand.New(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := graph.NodeID(2000 + i)
		cfg := adhoc.Config{
			Pos:   geom.Point{X: rng.Uniform(0, bench1000Arena), Y: rng.Uniform(0, bench1000Arena)},
			Range: rng.Uniform(20.5, 30.5),
		}
		if err := sess.Apply([]strategy.Event{strategy.JoinEvent(id, cfg)}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sess.Apply([]strategy.Event{strategy.LeaveEvent(id)}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func benchMoveEvent1000(b *testing.B, st strategy.Strategy) {
	sess := bench1000Base(b, st)
	rng := xrand.New(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := graph.NodeID(rng.Intn(1000))
		pos := geom.Point{X: rng.Uniform(0, bench1000Arena), Y: rng.Uniform(0, bench1000Arena)}
		if err := sess.Apply([]strategy.Event{strategy.MoveEvent(id, pos)}); err != nil {
			b.Fatal(err)
		}
	}
}

func scanMinim() strategy.Strategy { return core.NewFrom(adhoc.NewScan(), make(toca.Assignment)) }
func scanCP() strategy.Strategy    { return cppkg.NewFrom(adhoc.NewScan(), make(toca.Assignment)) }

func BenchmarkJoinEventMinim1000(b *testing.B)     { benchJoinEvent1000(b, core.New()) }
func BenchmarkJoinEventMinim1000Scan(b *testing.B) { benchJoinEvent1000(b, scanMinim()) }
func BenchmarkJoinEventCP1000(b *testing.B)        { benchJoinEvent1000(b, cppkg.New()) }
func BenchmarkJoinEventCP1000Scan(b *testing.B)    { benchJoinEvent1000(b, scanCP()) }
func BenchmarkMoveEventMinim1000(b *testing.B)     { benchMoveEvent1000(b, core.New()) }
func BenchmarkMoveEventMinim1000Scan(b *testing.B) { benchMoveEvent1000(b, scanMinim()) }

// Network-layer n=1000 benches: the topology maintenance the engine
// performs once per event for all subscribers — candidate discovery,
// partition, digraph rewiring — without any recoding on top. This is
// the layer the grid accelerates; the strategy benches above add the
// per-strategy recoding cost (for Minim, the matching dominates).
func benchNetworkEvent1000(b *testing.B, mk func() *adhoc.Network, move bool) {
	p := workload.Defaults()
	p.N = 1000
	p.ArenaW, p.ArenaH = bench1000Arena, bench1000Arena
	net := mk()
	for _, ev := range workload.JoinScript(7, p) {
		if err := net.Join(ev.ID, ev.Cfg); err != nil {
			b.Fatal(err)
		}
	}
	rng := xrand.New(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := geom.Point{X: rng.Uniform(0, bench1000Arena), Y: rng.Uniform(0, bench1000Arena)}
		if move {
			if err := net.Move(graph.NodeID(rng.Intn(1000)), pos); err != nil {
				b.Fatal(err)
			}
			continue
		}
		id := graph.NodeID(2000 + i)
		cfg := adhoc.Config{Pos: pos, Range: rng.Uniform(20.5, 30.5)}
		net.LocalPartitionFor(id, cfg) // what the engine decodes per join
		if err := net.Join(id, cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := net.Leave(id); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkNetworkJoin1000(b *testing.B)     { benchNetworkEvent1000(b, adhoc.New, false) }
func BenchmarkNetworkJoin1000Scan(b *testing.B) { benchNetworkEvent1000(b, adhoc.NewScan, false) }
func BenchmarkNetworkMove1000(b *testing.B)     { benchNetworkEvent1000(b, adhoc.New, true) }
func BenchmarkNetworkMove1000Scan(b *testing.B) { benchNetworkEvent1000(b, adhoc.NewScan, true) }

// ---- Sharded runtime: n=1000 join+move sweeps vs single-engine ----
//
// The base is an IPPP hot-spot network (one Gaussian spot per 2x2 shard
// region) at n=1000 on a 1000x1000 arena: traffic concentrates in shard
// interiors, the workload region sharding is built for. Each iteration
// times one sweep — shardSweep fresh joins, or one move round over a
// node sample — applied through the single-engine session (shards=0) or
// the sharded coordinator at 1, 2, or 4 region shards. Timed sections
// end with a full drain (Mark) so queued parallel work is counted.

const (
	shardBenchArena = 1000.0
	shardBenchN     = 1000
	shardSweep      = 200
)

func shardBenchDensity() workload.Density {
	return workload.Density{Spots: workload.GridSpots(2, 2, shardBenchArena, shardBenchArena, 80, 1)}
}

func shardBenchParams() workload.Params {
	p := workload.Defaults()
	p.N = shardBenchN
	p.ArenaW, p.ArenaH = shardBenchArena, shardBenchArena
	return p
}

// shardBenchRunner abstracts the two runtimes behind apply+drain.
type shardBenchRunner struct {
	apply func([]strategy.Event) error
	drain func() error
}

func newShardBenchRunner(b *testing.B, shards int) shardBenchRunner {
	b.Helper()
	base := workload.IPPPJoinScript(7, shardBenchParams(), shardBenchDensity())
	if shards == 0 {
		sess, err := sim.NewEngineSession([]sim.StrategyName{sim.Minim}, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Apply(base); err != nil {
			b.Fatal(err)
		}
		return shardBenchRunner{apply: sess.Apply, drain: func() error { return nil }}
	}
	grids := map[int][2]int{1: {1, 1}, 2: {2, 1}, 4: {2, 2}}
	g, ok := grids[shards]
	if !ok {
		b.Fatalf("no grid for %d shards", shards)
	}
	specs, err := shardpkg.DefaultSpecs(string(sim.Minim))
	if err != nil {
		b.Fatal(err)
	}
	coord, err := shardpkg.New(shardpkg.Config{
		GridX: g[0], GridY: g[1],
		ArenaW: shardBenchArena, ArenaH: shardBenchArena,
	}, specs)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { coord.Close() })
	drain := func() error { _, err := coord.Mark(); return err }
	if err := coord.Apply(base); err != nil {
		b.Fatal(err)
	}
	if err := drain(); err != nil {
		b.Fatal(err)
	}
	return shardBenchRunner{apply: coord.Apply, drain: drain}
}

// benchShardedJoins times a sweep of shardSweep IPPP joins (paired with
// untimed leaves so the population stays at shardBenchN).
func benchShardedJoins(b *testing.B, shards int) {
	r := newShardBenchRunner(b, shards)
	d := shardBenchDensity()
	b.ResetTimer()
	b.StopTimer() // event construction below is untimed from iteration 0
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(1000 + i))
		joins := make([]strategy.Event, 0, shardSweep)
		leaves := make([]strategy.Event, 0, shardSweep)
		for j := 0; j < shardSweep; j++ {
			id := graph.NodeID(10000 + j)
			cfg := adhoc.Config{
				Pos:   d.Sample(rng, shardBenchArena, shardBenchArena),
				Range: rng.Uniform(20.5, 30.5),
			}
			joins = append(joins, strategy.JoinEvent(id, cfg))
			leaves = append(leaves, strategy.LeaveEvent(id))
		}
		b.StartTimer()
		if err := r.apply(joins); err != nil {
			b.Fatal(err)
		}
		if err := r.drain(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := r.apply(leaves); err != nil {
			b.Fatal(err)
		}
		if err := r.drain(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShardedMoves times one sweep of shardSweep displacement-walk
// moves of base nodes (the paper's mobility model over the hot-spot
// population: small random displacements, so most moves stay
// shard-interior and cross-region walks exercise the border lane).
func benchShardedMoves(b *testing.B, shards int) {
	r := newShardBenchRunner(b, shards)
	base := workload.IPPPJoinScript(7, shardBenchParams(), shardBenchDensity())
	pos := make([]geom.Point, shardBenchN)
	for _, ev := range base {
		pos[ev.ID] = ev.Cfg.Pos
	}
	arena := geom.Arena(shardBenchArena, shardBenchArena)
	b.ResetTimer()
	b.StopTimer() // event construction below is untimed from iteration 0
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(5000 + i))
		moves := make([]strategy.Event, 0, shardSweep)
		for j := 0; j < shardSweep; j++ {
			id := rng.Intn(shardBenchN)
			d := geom.Polar(rng.Uniform(0, 30), rng.Angle())
			pos[id] = arena.Clamp(pos[id].Add(d))
			moves = append(moves, strategy.MoveEvent(graph.NodeID(id), pos[id]))
		}
		b.StartTimer()
		if err := r.apply(moves); err != nil {
			b.Fatal(err)
		}
		if err := r.drain(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
	}
}

func BenchmarkShardedJoin1000Single(b *testing.B)  { benchShardedJoins(b, 0) }
func BenchmarkShardedJoin1000Shards1(b *testing.B) { benchShardedJoins(b, 1) }
func BenchmarkShardedJoin1000Shards2(b *testing.B) { benchShardedJoins(b, 2) }
func BenchmarkShardedJoin1000Shards4(b *testing.B) { benchShardedJoins(b, 4) }
func BenchmarkShardedMove1000Single(b *testing.B)  { benchShardedMoves(b, 0) }
func BenchmarkShardedMove1000Shards1(b *testing.B) { benchShardedMoves(b, 1) }
func BenchmarkShardedMove1000Shards2(b *testing.B) { benchShardedMoves(b, 2) }
func BenchmarkShardedMove1000Shards4(b *testing.B) { benchShardedMoves(b, 4) }

// ---- Ablation A1: matching edge weights ----

// weightedJoinRun replays a join workload through a Minim-style recoder
// whose matching uses the given old-color edge weight, and returns the
// total recodings and final max color.
func weightedJoinRun(n int, seed uint64, wOld int64) (recodings int, maxColor toca.Color) {
	p := workload.Defaults()
	p.N = n
	net := adhoc.New()
	assign := make(toca.Assignment)
	for _, ev := range workload.JoinScript(seed, p) {
		part := net.PartitionFor(ev.ID, ev.Cfg)
		if err := net.Join(ev.ID, ev.Cfg); err != nil {
			panic(err)
		}
		v1 := append(part.InOrBoth(), ev.ID)
		excl := make(map[graph.NodeID]struct{}, len(v1))
		for _, u := range v1 {
			excl[u] = struct{}{}
		}
		old := make(map[graph.NodeID]toca.Color, len(v1))
		forb := make(map[graph.NodeID]toca.ColorSet, len(v1))
		for _, u := range v1 {
			old[u] = assign[u]
			forb[u] = toca.Forbidden(net.Graph(), assign, u, excl)
		}
		for u, c := range core.SolveWeighted(v1, old, forb, wOld, 1) {
			if assign[u] != c {
				recodings++
			}
			assign[u] = c
		}
	}
	if !toca.Valid(net.Graph(), assign) {
		panic("ablation run produced invalid assignment")
	}
	return recodings, assign.MaxColor()
}

// BenchmarkAblationWeights contrasts old-color edge weights 3 (the
// paper's, provably minimal), 2 (ties with two unit edges), and 1 (pure
// cardinality). The recodings metric shows why wOld > 2*wNew matters.
func BenchmarkAblationWeights(b *testing.B) {
	for _, wOld := range []int64{3, 2, 1} {
		b.Run(fmt.Sprintf("wOld=%d", wOld), func(b *testing.B) {
			var rec int
			var mc toca.Color
			for i := 0; i < b.N; i++ {
				rec, mc = weightedJoinRun(80, uint64(11+i), wOld)
			}
			b.ReportMetric(float64(rec), "recodings")
			b.ReportMetric(float64(mc), "max_color")
		})
	}
}

// ---- Ablation A3: gossip compaction after the join workload ----

func BenchmarkAblationGossip(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run("gossip="+name, func(b *testing.B) {
			var maxColor toca.Color
			for i := 0; i < b.N; i++ {
				st, err := sim.NewStrategy(sim.Minim)
				if err != nil {
					b.Fatal(err)
				}
				sess := sim.NewSession(st, false)
				p := workload.Defaults()
				p.N = 60
				if err := sess.Apply(workload.Churn(uint64(21+i), p, 120,
					workload.ChurnWeights{Join: 1, Leave: 1, Move: 3, Power: 1})); err != nil {
					b.Fatal(err)
				}
				if enabled {
					gossip.Compact(st.Network(), st.Assignment(), 0)
				}
				maxColor = st.Assignment().MaxColor()
			}
			b.ReportMetric(float64(maxColor), "max_color")
		})
	}
}

// ---- Ablation A5: CP movement semantics (lax re-pick vs strict
// leave+join). The strict reading always recodes the mover, widening the
// Fig 12(d) gap toward the paper's reported ~400. ----

func BenchmarkAblationCPMove(b *testing.B) {
	p := workload.Defaults()
	p.N = 40
	p.MaxDisp = 40
	p.RoundNo = 5
	for _, name := range []sim.StrategyName{sim.Minim, sim.CP, sim.CPStrict} {
		b.Run(string(name), func(b *testing.B) {
			var delta int
			for i := 0; i < b.N; i++ {
				base := workload.JoinScript(uint64(31+i), p)
				phase := workload.MoveScript(uint64(31+i), p)
				results, err := sim.RunPhases([]sim.StrategyName{name}, base, phase, false)
				if err != nil {
					b.Fatal(err)
				}
				delta = results[0].DeltaRecodings()
			}
			b.ReportMetric(float64(delta), "delta_recodings")
		})
	}
}

// ---- Ablation A6: BBB's centralized heuristic (DSATUR vs RLF) ----

func BenchmarkAblationBBBColorer(b *testing.B) {
	p := workload.Defaults()
	p.N = 60
	for _, variant := range []struct {
		name string
		c    bbbpkg.Colorer
	}{
		{"DSATUR", coloring.DSATUR},
		{"RLF", coloring.RLF},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var maxColor toca.Color
			for i := 0; i < b.N; i++ {
				st := bbbpkg.NewWithColorer(variant.c)
				sess := sim.NewSession(st, false)
				if err := sess.Apply(workload.JoinScript(uint64(41+i), p)); err != nil {
					b.Fatal(err)
				}
				maxColor = st.Assignment().MaxColor()
			}
			b.ReportMetric(float64(maxColor), "max_color")
		})
	}
}

// ---- Ablation A4: dense Hungarian vs sparse SSP matcher ----

// joinSizedInstance builds a matching instance shaped like a recoding
// join: k left vertices, ~maxColor right vertices, one weight-3 edge per
// left vertex, the rest weight 1.
func joinSizedInstance(rng *xrand.RNG, k, colors int) (int, int, []matching.Edge) {
	var edges []matching.Edge
	for l := 0; l < k; l++ {
		oldColor := rng.Intn(colors)
		for r := 0; r < colors; r++ {
			if rng.Float64() < 0.2 {
				continue // forbidden
			}
			w := int64(1)
			if r == oldColor {
				w = 3
			}
			edges = append(edges, matching.Edge{L: l, R: r, W: w})
		}
	}
	return k, colors, edges
}

func BenchmarkMatcherHungarian(b *testing.B) {
	rng := xrand.New(31)
	nL, nR, edges := joinSizedInstance(rng, 12, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MaxWeight(nL, nR, edges)
	}
}

func BenchmarkMatcherSSP(b *testing.B) {
	rng := xrand.New(31)
	nL, nR, edges := joinSizedInstance(rng, 12, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MaxWeightSSP(nL, nR, edges)
	}
}

// ---- Substrate microbenchmarks ----

func BenchmarkDSATURConflictGraph100(b *testing.B) {
	p := workload.Defaults()
	st, err := sim.NewStrategy(sim.Minim)
	if err != nil {
		b.Fatal(err)
	}
	sess := sim.NewSession(st, false)
	if err := sess.Apply(workload.JoinScript(3, p)); err != nil {
		b.Fatal(err)
	}
	g := st.Network().Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj := coloring.Adjacency(toca.ConflictGraph(g))
		coloring.DSATUR(adj)
	}
}

func BenchmarkRadioSlot(b *testing.B) {
	st, err := sim.NewStrategy(sim.Minim)
	if err != nil {
		b.Fatal(err)
	}
	sess := sim.NewSession(st, false)
	p := workload.Defaults()
	p.N = 60
	if err := sess.Apply(workload.JoinScript(5, p)); err != nil {
		b.Fatal(err)
	}
	book, err := radio.BookFor(st.Assignment())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := radio.BroadcastAll(st.Network(), st.Assignment(), book, nil); err != nil {
			b.Fatal(err)
		}
	}
}
